"""TS2 Framing (§4.7, fig 12) as an explicit, reversible operation.

Framing lets the type checker temporarily ignore irrelevant portions of
(H; Γ): regions, variables, and parts of tracking contexts are set aside
in a :class:`Frame`, and *pinning* marks what remains so the visible side
cannot violate assumptions the hidden side depends on:

* hiding the tracked variables of a region pins the region — nothing new
  may be focused there (the hidden tracking still "occupies" it);
* hiding a tracked field (because its target region is being hidden) pins
  the owning variable — its remaining iso fields cannot be explored or
  reassigned while the frame is out (partial information, §4.4);
* a pinned context can only arise by framing, so every pinned context
  approximates some fully unpinned one — which is what keeps tempered
  domination intact under framing (§4.7).

:func:`restore` re-attaches the hidden material and removes exactly the
pins this frame introduced, failing loudly if the visible side was
manipulated into a state the frame cannot re-enter (name or region
collisions).

The checker's call rule performs this framing implicitly (leaving
uninvolved regions untouched); this module gives the structural rule a
direct, testable form, mirroring how the paper presents TS2 as its own
judgment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .contexts import Binding, ContextError, StaticContext, TrackedVar, TrackingContext
from .regions import Region


@dataclass
class Frame:
    """The hidden portion of a framed context, plus the pins it planted."""

    hidden_regions: Dict[Region, TrackingContext] = field(default_factory=dict)
    hidden_vars: Dict[str, Binding] = field(default_factory=dict)
    #: Tracked entries hidden out of *visible* regions: (region, var, entry).
    hidden_tracked: List[Tuple[Region, str, TrackedVar]] = field(
        default_factory=list
    )
    #: (owner region, owner var, field, target) entries hidden individually.
    hidden_fields: List[Tuple[Region, str, str, Optional[Region]]] = field(
        default_factory=list
    )
    pinned_regions: Set[Region] = field(default_factory=set)
    pinned_vars: Set[str] = field(default_factory=set)

    @property
    def is_empty(self) -> bool:
        return not (
            self.hidden_regions
            or self.hidden_vars
            or self.hidden_tracked
            or self.hidden_fields
        )


def frame_away(
    ctx: StaticContext,
    regions: Set[Region] = frozenset(),
    variables: Set[str] = frozenset(),
) -> Frame:
    """Hide ``regions`` (with their tracking contexts and member variables)
    and the extra ``variables`` from ``ctx``; returns the frame to restore.

    Visible tracked fields that target a hidden region are hidden too, and
    their owners pinned.  Visible variables inside a hidden region are
    hidden along with it.
    """
    frame = Frame()

    for region in sorted(regions):
        if region not in ctx.heap:
            raise ContextError(f"cannot frame absent region {region}")

    # Extra variables: their bindings vanish; if tracked, the region they
    # are tracked in gets pinned (partial information about that region).
    for name in sorted(variables):
        if not ctx.has_var(name):
            raise ContextError(f"cannot frame unbound variable {name!r}")
        binding = ctx.lookup(name)
        if binding.region is not None and binding.region in regions:
            continue  # hidden together with its region below
        frame.hidden_vars[name] = binding
        del ctx.own_gamma()[name]
        ctx.mark_dirty()
        tracked_at = ctx.tracked_region_of(name)
        if tracked_at is not None and tracked_at not in regions:
            tc = ctx.own_tracking(tracked_at)
            frame.hidden_tracked.append((tracked_at, name, tc.vars.pop(name)))
            if not tc.pinned:
                tc.pinned = True
                frame.pinned_regions.add(tracked_at)
            ctx.mark_dirty()

    # Regions: detach wholesale.
    for region in sorted(regions):
        tc = ctx.own_heap().pop(region)
        frame.hidden_regions[region] = tc
        for name in list(ctx.gamma):
            if ctx.gamma[name].region == region:
                frame.hidden_vars[name] = ctx.own_gamma().pop(name)
        ctx.mark_dirty()

    # Visible tracked fields targeting a hidden region: hide the field,
    # pin the owner.
    for owner_region in sorted(ctx.heap):
        tc = ctx.heap[owner_region]
        for owner in sorted(tc.vars):
            tv = tc.vars[owner]
            for fieldname in sorted(tv.fields):
                target = tv.fields[fieldname]
                if target is not None and target in regions:
                    frame.hidden_fields.append(
                        (owner_region, owner, fieldname, target)
                    )
                    owned = ctx.own_tracked(owner_region, owner)
                    del owned.fields[fieldname]
                    if not owned.pinned:
                        owned.pinned = True
                        frame.pinned_vars.add(owner)
                    ctx.mark_dirty()

    return frame


def restore(ctx: StaticContext, frame: Frame) -> None:
    """Re-attach a frame.  Fails when the visible side evolved into a state
    the hidden material cannot re-enter."""
    for region in frame.hidden_regions:
        if region in ctx.heap:
            raise ContextError(
                f"cannot restore frame: region {region} was re-created"
            )
    for name in frame.hidden_vars:
        if ctx.has_var(name):
            raise ContextError(
                f"cannot restore frame: variable {name!r} was re-bound"
            )

    for region, tc in frame.hidden_regions.items():
        overlap = [
            x for x in tc.vars if ctx.tracked_region_of(x) is not None
        ]
        if overlap:
            raise ContextError(
                f"cannot restore frame: {overlap} tracked elsewhere now"
            )
        ctx.own_heap()[region] = tc
        ctx.mark_dirty()
    for region, name, entry in frame.hidden_tracked:
        tc = ctx.heap.get(region)
        if tc is None:
            raise ContextError(
                f"cannot restore frame: region {region} of hidden tracked "
                f"variable {name!r} disappeared"
            )
        if name in tc.vars or ctx.tracked_region_of(name) is not None:
            raise ContextError(
                f"cannot restore frame: {name!r} was re-tracked while framed"
            )
        ctx.own_tracking(region).vars[name] = entry
        ctx.mark_dirty()
    for name, binding in frame.hidden_vars.items():
        ctx.own_gamma()[name] = binding
        ctx.mark_dirty()

    for owner_region, owner, fieldname, target in frame.hidden_fields:
        tc = ctx.heap.get(owner_region)
        tv = tc.vars.get(owner) if tc is not None else None
        if tv is None:
            raise ContextError(
                f"cannot restore frame: owner {owner!r} of hidden field "
                f"{fieldname!r} disappeared"
            )
        if fieldname in tv.fields:
            raise ContextError(
                f"cannot restore frame: field {owner}.{fieldname} was "
                "re-tracked while framed"
            )
        # A hidden region that was consumed while framed out cannot happen
        # (it was hidden); the target is back by construction.
        ctx.own_tracked(owner_region, owner).fields[fieldname] = target
        ctx.mark_dirty()

    # Remove exactly the pins this frame planted.
    for region in frame.pinned_regions:
        if region in ctx.heap:
            ctx.set_region_pinned(region, False)
    for name in frame.pinned_vars:
        tracked_at = ctx.tracked_region_of(name)
        if tracked_at is not None:
            ctx.set_var_pinned(tracked_at, name, False)

    frame.hidden_regions.clear()
    frame.hidden_vars.clear()
    frame.hidden_tracked.clear()
    frame.hidden_fields.clear()
    frame.pinned_regions.clear()
    frame.pinned_vars.clear()
