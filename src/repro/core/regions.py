"""Regions — the compile-time unit of heap separation (§4.1).

A region is a purely static name for a disjoint subgraph of the heap.  The
type system treats each region as an affine resource: consuming it (send,
retract, attach) invalidates every reference into it.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator


class Region:
    """An opaque region name.  Identity is the integer id.

    Regions are *interned*: ``Region(7) is Region(7)``, so the hot paths of
    the checker (snapshot keys, renaming lookups, heap-dict probes) get
    pointer-identity comparisons and trivially cheap hashing.  Instances are
    immutable; copying (shallow or deep) returns the same object, which keeps
    persistent sharing of contexts sound.

    The intern table is process-wide and consulted from every checker
    thread, so insertion is serialised under a lock (double-checked: the
    fast path stays a single lock-free dict probe).  Without it, two
    threads racing on a first-seen ident could each get a distinct object
    for the same region and break ``is``-identity.
    """

    __slots__ = ("ident",)

    _interned: Dict[int, "Region"] = {}
    _intern_lock = threading.Lock()

    def __new__(cls, ident: int) -> "Region":
        region = cls._interned.get(ident)
        if region is None:
            with cls._intern_lock:
                region = cls._interned.get(ident)
                if region is None:
                    region = super().__new__(cls)
                    object.__setattr__(region, "ident", ident)
                    cls._interned[ident] = region
        return region

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Region is immutable")

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, Region) and other.ident == self.ident
        )

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self) -> int:
        return self.ident

    def __lt__(self, other) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self.ident < other.ident

    def __le__(self, other) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self.ident <= other.ident

    def __gt__(self, other) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self.ident > other.ident

    def __ge__(self, other) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self.ident >= other.ident

    def __copy__(self) -> "Region":
        return self

    def __deepcopy__(self, memo) -> "Region":
        return self

    def __reduce__(self):
        return (Region, (self.ident,))

    def __str__(self) -> str:
        return f"r{self.ident}"

    def __repr__(self) -> str:
        return f"r{self.ident}"


class RegionSupply:
    """Generates fresh regions.  Freshness is global per checker run so
    derivations can be verified (a "fresh" region must be globally new)."""

    def __init__(self, start: int = 0):
        self._next = start

    def fresh(self) -> Region:
        region = Region(self._next)
        self._next += 1
        return region

    @property
    def next_id(self) -> int:
        return self._next


class RegionRenaming:
    """A partial injective map between region names, built up during
    unification and function application matching."""

    def __init__(self) -> None:
        self._fwd: Dict[Region, Region] = {}
        self._bwd: Dict[Region, Region] = {}

    def bind(self, source: Region, target: Region) -> bool:
        """Record source↦target; False if it conflicts with existing pairs."""
        if source in self._fwd:
            return self._fwd[source] == target
        if target in self._bwd:
            return self._bwd[target] == source
        self._fwd[source] = target
        self._bwd[target] = source
        return True

    def apply(self, region: Region) -> Region:
        return self._fwd.get(region, region)

    def lookup(self, source: Region) -> Region:
        """The image of ``source``; KeyError if unbound."""
        return self._fwd[source]

    def inverse(self, target: Region) -> Region:
        return self._bwd[target]

    def has_source(self, source: Region) -> bool:
        return source in self._fwd

    def has_target(self, target: Region) -> bool:
        return target in self._bwd

    def items(self) -> Iterator[tuple]:
        return iter(self._fwd.items())

    def __len__(self) -> int:
        return len(self._fwd)

    def __str__(self) -> str:
        pairs = ", ".join(f"{s}→{t}" for s, t in sorted(self._fwd.items()))
        return "{" + pairs + "}"
