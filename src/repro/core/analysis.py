"""Cached per-function control- and data-flow analysis (§5.1 support).

The checker's liveness oracle and branch unification repeatedly need the
same facts about a function body: which variables an expression reads
(``uses``), which are live after each node, and where definitions reach.
Before this module they were re-derived node by node — ``uses`` walked the
subtree on every call, and a fresh :class:`~repro.core.liveness.Liveness`
was built per function check even when a warm session re-checks the same
program.

:class:`ProgramAnalysis` owns one lazily built, immutable
:class:`FunctionAnalysis` per function plus the function-call graph.  All
facts are computed once and frozen, so a warm
:class:`~repro.pipeline.session.ProgramSession` can hand the same analysis
to concurrent checker threads: construction is serialised under a small
lock, reads after publication are lock-free.

The analysis is *descriptive only*: nothing here changes which programs are
accepted or what derivations look like — it only avoids recomputing facts
the checker already relied on (CHECKER_VERSION is unaffected).

Facts provided:

* ``uses(expr)`` — memoized read-set of an expression (same contract as
  :func:`repro.core.liveness.uses`).
* ``liveness`` — the function's backward liveness table, shared across
  repeated checks of the same session.
* ``cfg`` — a light control-flow graph over the expression tree: one node
  per control point with successor edges (sequence, branch, loop
  back-edge).
* ``reaching_defs(node)`` — the ``(variable, def-site)`` pairs that may
  reach a control point, from a forward fixpoint over the CFG.
* ``call_graph()`` / ``callees(name)`` / ``callers(name)`` — the static
  function-call graph of the program.
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..lang import ast
from ..telemetry import registry as _telemetry
from .liveness import Liveness, uses as _uses


class CFGNode:
    """A control point: an AST node plus its successor control points."""

    __slots__ = ("index", "node", "succs")

    def __init__(self, index: int, node: ast.Expr):
        self.index = index
        self.node = node
        self.succs: List[int] = []


class CFG:
    """Control-flow graph over a function body.

    Nodes are the *statement-level* expressions in evaluation order; edges
    follow sequencing, both branch arms, and the loop back-edge of
    ``while``.  Entry is node 0 (the body), exits are nodes with no
    successor.
    """

    def __init__(self, fdef: ast.FuncDef):
        self.nodes: List[CFGNode] = []
        self._index_of: Dict[int, int] = {}
        last = self._build(fdef.body)
        self.exits: Tuple[int, ...] = tuple(last)

    def node_index(self, node: ast.Expr) -> Optional[int]:
        return self._index_of.get(id(node))

    def _add(self, node: ast.Expr) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index, node))
        self._index_of[id(node)] = index
        return index

    def _link(self, sources: List[int], target: int) -> None:
        for source in sources:
            succs = self.nodes[source].succs
            if target not in succs:
                succs.append(target)

    def _build(self, node: ast.Expr) -> List[int]:
        """Add ``node``'s control points; return the open exit nodes."""
        index = self._add(node)

        if isinstance(node, ast.Block):
            open_ends = [index]
            for entry in node.body:
                entry_index = len(self.nodes)
                ends = self._build(entry)
                self._link(open_ends, entry_index)
                open_ends = ends
            return open_ends

        if isinstance(node, (ast.If, ast.IfDisconnected, ast.LetSome)):
            then_index = len(self.nodes)
            then_ends = self._build(node.then_block)
            self._link([index], then_index)
            if node.else_block is not None:
                else_index = len(self.nodes)
                else_ends = self._build(node.else_block)
                self._link([index], else_index)
                return then_ends + else_ends
            return then_ends + [index]

        if isinstance(node, ast.While):
            body_index = len(self.nodes)
            body_ends = self._build(node.body)
            self._link([index], body_index)
            self._link(body_ends, index)  # back-edge
            return [index]

        if isinstance(node, ast.LetBind):
            init_index = len(self.nodes)
            init_ends = self._build(node.init)
            self._link([index], init_index)
            return init_ends

        # Straight-line expressions are a single control point.
        return [index]


def _definitions(node: ast.Expr) -> FrozenSet[str]:
    """Variable names (re)defined directly at ``node``."""
    if isinstance(node, (ast.LetBind, ast.LetSome)):
        return frozenset({node.name})
    if isinstance(node, ast.Assign) and isinstance(node.target, ast.VarRef):
        return frozenset({node.target.name})
    return frozenset()


class FunctionAnalysis:
    """All cached facts for one function.  Immutable after construction
    except the internal ``uses`` memo, which is append-only and keyed by
    node identity (idempotent values, so concurrent fills are benign)."""

    def __init__(self, fdef: ast.FuncDef):
        self.fdef = fdef
        self.liveness = Liveness(fdef)
        self.cfg = CFG(fdef)
        self._uses: Dict[int, FrozenSet[str]] = {}
        self._reaching: Optional[Dict[int, FrozenSet[Tuple[str, int]]]] = None
        self._reaching_lock = threading.Lock()
        tel = _telemetry()
        if tel.enabled:
            tel.inc("analysis.functions")
            tel.inc("analysis.cfg.nodes", len(self.cfg.nodes))

    def uses(self, expr: ast.Expr) -> FrozenSet[str]:
        """Memoized :func:`repro.core.liveness.uses`."""
        cached = self._uses.get(id(expr))
        tel = _telemetry()
        if cached is not None:
            if tel.enabled:
                tel.inc("analysis.uses.hits")
            return cached
        if tel.enabled:
            tel.inc("analysis.uses.misses")
        result = frozenset(_uses(expr))
        self._uses[id(expr)] = result
        return result

    def live_after(self, node: ast.Expr) -> FrozenSet[str]:
        return self.liveness.live_after(node)

    def reaching_defs(self, node: ast.Expr) -> FrozenSet[Tuple[str, int]]:
        """The ``(variable, defining CFG node index)`` pairs that may reach
        ``node``.  Parameters reach as ``(name, -1)``.  Empty for nodes that
        are not control points."""
        table = self._reaching
        if table is None:
            with self._reaching_lock:
                table = self._reaching
                if table is None:
                    table = self._compute_reaching()
                    self._reaching = table
        index = self.cfg.node_index(node)
        if index is None:
            return frozenset()
        return table[index]

    def _compute_reaching(self) -> Dict[int, FrozenSet[Tuple[str, int]]]:
        tel = _telemetry()
        if tel.enabled:
            tel.inc("analysis.reaching.computed")
        nodes = self.cfg.nodes
        entry_facts = frozenset(
            (p.name, -1) for p in self.fdef.params
        )
        ins: List[Set[Tuple[str, int]]] = [set() for _ in nodes]
        if nodes:
            ins[0] |= entry_facts
        preds: List[List[int]] = [[] for _ in nodes]
        for cfg_node in nodes:
            for succ in cfg_node.succs:
                preds[succ].append(cfg_node.index)

        def flow(index: int) -> Set[Tuple[str, int]]:
            defs = _definitions(nodes[index].node)
            out = {fact for fact in ins[index] if fact[0] not in defs}
            out |= {(name, index) for name in defs}
            return out

        changed = True
        while changed:
            changed = False
            for cfg_node in nodes:
                index = cfg_node.index
                new_in: Set[Tuple[str, int]] = set(entry_facts) if index == 0 else set()
                for pred in preds[index]:
                    new_in |= flow(pred)
                if new_in - ins[index]:
                    ins[index] |= new_in
                    changed = True
        return {index: frozenset(ins[index]) for index in range(len(nodes))}


class ProgramAnalysis:
    """Per-program analysis cache: one :class:`FunctionAnalysis` per
    function plus the function-call graph.  Thread-safe: construction of
    each entry is serialised, published entries are immutable."""

    def __init__(self, program: ast.Program):
        self._program = program
        self._lock = threading.Lock()
        self._funcs: Dict[str, FunctionAnalysis] = {}
        self._call_graph: Optional[Dict[str, FrozenSet[str]]] = None

    def function(self, name: str) -> FunctionAnalysis:
        analysis = self._funcs.get(name)
        if analysis is not None:
            return analysis
        fdef = self._program.func(name)
        with self._lock:
            analysis = self._funcs.get(name)
            if analysis is None:
                analysis = FunctionAnalysis(fdef)
                self._funcs[name] = analysis
        return analysis

    def for_function(self, fdef: ast.FuncDef) -> FunctionAnalysis:
        """Analysis for ``fdef``: the cached entry when it is the
        program's definition of that name, a fresh uncached one for
        synthetic definitions (the REPL wraps each input in a throwaway
        function that never joins the program)."""
        if self._program.funcs.get(fdef.name) is fdef:
            return self.function(fdef.name)
        return FunctionAnalysis(fdef)

    def call_graph(self) -> Dict[str, FrozenSet[str]]:
        """``caller -> callees`` over every function of the program."""
        graph = self._call_graph
        if graph is not None:
            return graph
        with self._lock:
            graph = self._call_graph
            if graph is None:
                graph = {}
                for name, fdef in self._program.funcs.items():
                    callees = {
                        node.func
                        for node in ast.walk(fdef.body)
                        if isinstance(node, ast.Call)
                        and node.func in self._program.funcs
                    }
                    graph[name] = frozenset(callees)
                self._call_graph = graph
                tel = _telemetry()
                if tel.enabled:
                    tel.inc("analysis.callgraph.built")
        return graph

    def callees(self, name: str) -> FrozenSet[str]:
        return self.call_graph().get(name, frozenset())

    def callers(self, name: str) -> FrozenSet[str]:
        return frozenset(
            caller
            for caller, callees in self.call_graph().items()
            if name in callees
        )
