"""Context normalization and unification (§4.6, §5.1).

Branches of a conditional (and loop bodies, and function exits) must end in
*the same* static context.  There are many virtually-transformed variants of
equivalent contexts, so the checker:

1. **prunes** each side to a liveness-guided normal form — dead variables
   are dropped, unneeded tracking is retracted/unfocused, dead regions are
   dropped (the "liveness analysis as unification oracle" of §5.1);
2. **coarsens** region partitions with V5 Attach until live variables induce
   the same partition on both sides;
3. **reconciles** remaining tracking differences (focus/explore on the
   poorer side when possible, retract/unfocus on the richer side otherwise,
   ⊥-weakening as a last resort);
4. α-renames one side's regions onto the other and demands snapshot
   equality.

When the greedy pass fails, :func:`search_unify` performs the bounded
backtracking search the paper falls back to (worst-case exponential, §4.6).

All transformations applied are returned as ``Step`` records so they can be
embedded in derivations and re-validated by the verifier.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..telemetry import registry as _telemetry
from .contexts import ContextError, StaticContext
from .errors import UnificationError
from .regions import Region, RegionRenaming


@dataclass(frozen=True)
class Step:
    """One virtual transformation or weakening applied to a context."""

    rule: str  # "V1-Focus", "V2-Unfocus", "V3-Explore", "V4-Retract",
    #            "V5-Attach", "W-DropVar", "W-DropRegion",
    #            "W-InvalidateField", "W-Rename"
    args: Tuple

    def __str__(self) -> str:
        return f"{self.rule}({', '.join(map(str, self.args))})"


# ---------------------------------------------------------------------------
# Step application (shared with checker and verifier)
# ---------------------------------------------------------------------------


def apply_step(ctx: StaticContext, step: Step) -> None:
    """Apply a recorded step to a context (raises ContextError on violation).

    This is the single replay semantics shared by the prover (when it needs
    to re-apply a recorded transformation) and the independent verifier.
    """
    rule, args = step.rule, step.args
    if rule == "V1-Focus":
        ctx.focus(args[0])
    elif rule == "V2-Unfocus":
        ctx.unfocus(args[0])
    elif rule == "V3-Explore":
        name, fieldname, target = args
        # Explore normally mints a fresh region; during replay the recorded
        # region is reused so downstream steps refer to the right name.
        region = ctx.tracked_region_of(name)
        if region is None:
            raise ContextError(f"explore: {name!r} not focused")
        tv = ctx.heap[region].vars[name]
        if tv.pinned:
            raise ContextError(f"explore: variable {name!r} pinned")
        if fieldname in tv.fields:
            raise ContextError(f"explore: field {name}.{fieldname} already tracked")
        ctx.add_region(target)
        ctx.own_tracked(region, name).fields[fieldname] = target
        ctx.mark_dirty()
    elif rule == "V4-Retract":
        ctx.retract(args[0], args[1])
    elif rule == "V5-Attach":
        ctx.attach(args[0], args[1])
    elif rule == "W-DropVar":
        ctx.drop_var(args[0])
    elif rule == "W-DropRegion":
        ctx.drop_region(args[0])
    elif rule == "W-InvalidateField":
        ctx.invalidate_field(args[0], args[1])
    elif rule == "W-Rename":
        ctx.rename_region(args[0], args[1])
    elif rule == "W-RenameAll":
        renaming = RegionRenaming()
        for src, dest in args[0]:
            if not renaming.bind(src, dest):
                raise ContextError("W-RenameAll mapping is not injective")
        ctx.apply_renaming(renaming)
    elif rule == "W-FreshRegion":
        ctx.add_region(args[0])
    elif rule == "W-Bind":
        name, ty_text, region = args
        from ..lang.parser import Parser  # local import to avoid a cycle

        ty = Parser(ty_text).parse_type()
        if region is not None and region not in ctx.heap:
            raise ContextError(f"W-Bind: region {region} absent")
        ctx.set_binding(name, ty, region)
    elif rule == "W-GhostRename":
        name, ghost = args
        region = ctx.tracked_region_of(name)
        if region is None:
            raise ContextError(f"W-GhostRename: {name!r} not tracked")
        if ctx.tracked_region_of(ghost) is not None:
            raise ContextError(f"W-GhostRename: {ghost!r} already tracked")
        ctx.rename_tracked(region, name, ghost)
    elif rule == "T7-SetField":
        name, fieldname, target = args
        region = ctx.tracked_region_of(name)
        if region is None:
            raise ContextError(f"T7-SetField: {name!r} not focused")
        tv = ctx.heap[region].vars[name]
        if tv.pinned:
            raise ContextError(f"T7-SetField: {name!r} is pinned")
        if target not in ctx.heap:
            raise ContextError(f"T7-SetField: target region {target} absent")
        ctx.own_tracked(region, name).fields[fieldname] = target
        ctx.mark_dirty()
    elif rule == "T16-ConsumeRegion":
        ctx.consume_region_for_send(args[0])
    else:
        raise ContextError(f"unknown step {rule}")


# ---------------------------------------------------------------------------
# Pruning: liveness-guided normal form
# ---------------------------------------------------------------------------


def prune(
    ctx: StaticContext,
    live: FrozenSet[str],
    protect: FrozenSet[Region] = frozenset(),
) -> List[Step]:
    """Reduce ``ctx`` to its normal form w.r.t. the live-variable set.

    Mutates ``ctx``; returns the steps applied.  ``protect`` lists regions
    that must survive even without live variables (e.g. non-consumed
    parameter regions at function exit).
    """
    steps: List[Step] = []

    # 0. Dead Γ bindings go first so they don't anchor regions.
    for name in sorted(ctx.gamma):
        if name not in live:
            ctx.drop_var(name)
            steps.append(Step("W-DropVar", (name,)))

    def anchored() -> Set[Region]:
        out = set(protect)
        for binding in ctx.gamma.values():
            if binding.region is not None:
                out.add(binding.region)
        return out

    # 1. Fixpoint: retract dead tracked fields, unfocus empty tracked vars.
    changed = True
    while changed:
        changed = False
        anchor = anchored()
        for region in sorted(ctx.heap):
            tc = ctx.heap.get(region)
            if tc is None or tc.pinned:
                continue
            for name in sorted(tc.vars):
                tv = tc.vars[name]
                if tv.pinned:
                    continue
                for fieldname in sorted(tv.fields):
                    target = tv.fields[fieldname]
                    if target is None or target in anchor:
                        continue
                    target_tc = ctx.heap.get(target)
                    if target_tc is None or target_tc.pinned or not target_tc.is_empty:
                        continue
                    if len(ctx.inbound_refs(target)) > 1:
                        continue
                    ctx.retract(name, fieldname)
                    steps.append(Step("V4-Retract", (name, fieldname)))
                    changed = True
                if not tv.fields and name in tc.vars:
                    ctx.unfocus(name)
                    steps.append(Step("V2-Unfocus", (name,)))
                    changed = True

    # 2. Drop unreachable regions: keep anchored regions plus everything
    #    reachable from them through remaining tracked-field mappings.
    keep = anchored()
    frontier = list(keep)
    while frontier:
        region = frontier.pop()
        tc = ctx.heap.get(region)
        if tc is None:
            continue
        for tv in tc.vars.values():
            for target in tv.fields.values():
                if target is not None and target not in keep:
                    keep.add(target)
                    frontier.append(target)
    for region in sorted(ctx.heap):
        if region not in keep and not ctx.heap[region].pinned:
            ctx.drop_region(region)
            steps.append(Step("W-DropRegion", (region,)))

    return steps


# ---------------------------------------------------------------------------
# Greedy matching of two pruned contexts
# ---------------------------------------------------------------------------


def _var_partition(ctx: StaticContext) -> Dict[str, Region]:
    return {
        name: binding.region
        for name, binding in ctx.gamma.items()
        if binding.region is not None
    }


def _coarsen_partitions(
    ctx_a: StaticContext, ctx_b: StaticContext
) -> Tuple[List[Step], List[Step]]:
    """Apply V5 Attach on both sides until live variables induce the same
    region partition (the finest common coarsening)."""
    steps_a: List[Step] = []
    steps_b: List[Step] = []

    # Union-find over variable names.
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        while parent.get(x, x) != x:
            parent[x] = parent.get(parent[x], parent[x])
            x = parent[x]
        return x

    def union(x: str, y: str) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[rx] = ry

    part_a = _var_partition(ctx_a)
    part_b = _var_partition(ctx_b)
    names = sorted(set(part_a) & set(part_b))
    for ctx_part in (part_a, part_b):
        by_region: Dict[Region, List[str]] = {}
        for name in names:
            by_region.setdefault(ctx_part[name], []).append(name)
        for group in by_region.values():
            for other in group[1:]:
                union(group[0], other)

    # For each equivalence class, attach all its regions into one per side.
    classes: Dict[str, List[str]] = {}
    for name in names:
        classes.setdefault(find(name), []).append(name)
    for members in classes.values():
        for ctx, part, steps in (
            (ctx_a, part_a, steps_a),
            (ctx_b, part_b, steps_b),
        ):
            regions = sorted({part[m] for m in members})
            dest = regions[0]
            for src in regions[1:]:
                ctx.attach(src, dest)
                steps.append(Step("V5-Attach", (src, dest)))
    return steps_a, steps_b


def _build_renaming(
    ctx_a: StaticContext, ctx_b: StaticContext
) -> Tuple[RegionRenaming, List[Tuple[Region, Region]], List[Tuple[Region, Region]]]:
    """Region correspondence B→A from variable anchors plus tracked-field
    structure.

    When two distinct regions on one side both need to correspond to a
    single region on the other, they must be *merged* (V5 Attach) on the
    finer side; such (src, dest) merge suggestions are returned for
    ``match_contexts`` to apply.
    """
    renaming = RegionRenaming()
    merges_a: List[Tuple[Region, Region]] = []
    merges_b: List[Tuple[Region, Region]] = []

    def bind_or_merge(tb: Region, ta: Region) -> bool:
        if renaming.bind(tb, ta):
            return True
        if renaming.has_source(tb) and renaming.lookup(tb) != ta:
            # tb already maps to some other A region: merge on the A side.
            merges_a.append((ta, renaming.lookup(tb)))
        if renaming.has_target(ta) and renaming.inverse(ta) != tb:
            # Some other B region already maps to ta: merge on the B side.
            merges_b.append((tb, renaming.inverse(ta)))
        return False

    part_a = _var_partition(ctx_a)
    part_b = _var_partition(ctx_b)
    for name in sorted(set(part_a) & set(part_b)):
        bind_or_merge(part_b[name], part_a[name])
    # Propagate through matching tracked fields.
    changed = True
    while changed:
        changed = False
        for region_b in sorted(ctx_b.heap):
            if not renaming.has_source(region_b):
                continue
            region_a = renaming.lookup(region_b)
            if region_a not in ctx_a.heap:
                continue
            tc_a, tc_b = ctx_a.heap[region_a], ctx_b.heap[region_b]
            for name in set(tc_a.vars) & set(tc_b.vars):
                fields_a = tc_a.vars[name].fields
                fields_b = tc_b.vars[name].fields
                for f in set(fields_a) & set(fields_b):
                    ta, tb = fields_a[f], fields_b[f]
                    if ta is None or tb is None:
                        continue
                    if not renaming.has_source(tb) or not renaming.has_target(ta):
                        if bind_or_merge(tb, ta):
                            changed = True
    return renaming, merges_a, merges_b


def _reconcile_tracking(
    ctx_a: StaticContext,
    ctx_b: StaticContext,
    renaming: RegionRenaming,
) -> Tuple[List[Step], List[Step], bool]:
    """One pass of tracking reconciliation.  Returns (steps_a, steps_b,
    progressed)."""
    steps_a: List[Step] = []
    steps_b: List[Step] = []

    def anchor_regions(ctx: StaticContext) -> Set[Region]:
        return {
            b.region for b in ctx.gamma.values() if b.region is not None
        }

    def bind_pair(in_a: Region, in_b: Region) -> None:
        renaming.bind(in_b, in_a)

    def steps_for(ctx: StaticContext) -> List[Step]:
        return steps_a if ctx is ctx_a else steps_b

    def other(ctx: StaticContext) -> StaticContext:
        return ctx_b if ctx is ctx_a else ctx_a

    def try_drop_tracking(rich: StaticContext, name: str) -> bool:
        """Retract all of ``name``'s tracked fields then unfocus, when every
        target is a droppable (dead, empty, singly-referenced) region."""
        tv = rich.tracked_var(name)
        if tv is None or tv.pinned:
            return False
        anchor = anchor_regions(rich)
        for fieldname, target in tv.fields.items():
            if target is None or target in anchor:
                return False
            target_tc = rich.heap.get(target)
            if target_tc is None or not target_tc.is_empty or target_tc.pinned:
                return False
            if len(rich.inbound_refs(target)) != 1:
                return False
        for fieldname in sorted(tv.fields):
            rich.retract(name, fieldname)
            steps_for(rich).append(Step("V4-Retract", (name, fieldname)))
        rich.unfocus(name)
        steps_for(rich).append(Step("V2-Unfocus", (name,)))
        return True

    def try_focus(poor: StaticContext, poor_region: Region, name: str) -> bool:
        if not poor.has_var(name):
            return False
        if poor.gamma[name].region != poor_region:
            return False
        if not poor.heap[poor_region].is_empty or poor.heap[poor_region].pinned:
            return False
        poor.focus(name)
        steps_for(poor).append(Step("V1-Focus", (name,)))
        return True

    def explore_on(poor: StaticContext, name: str, fieldname: str) -> Region:
        fresh = poor.supply.fresh()
        step = Step("V3-Explore", (name, fieldname, fresh))
        apply_step(poor, step)
        steps_for(poor).append(step)
        return fresh

    # Walk region pairs related by the renaming.
    for region_b in sorted(ctx_b.heap):
        if not renaming.has_source(region_b):
            continue
        region_a = renaming.lookup(region_b)
        if region_a not in ctx_a.heap:
            continue
        tc_a, tc_b = ctx_a.heap[region_a], ctx_b.heap[region_b]

        # Variables tracked on exactly one side.
        for rich, rich_region, poor, poor_region in (
            (ctx_a, region_a, ctx_b, region_b),
            (ctx_b, region_b, ctx_a, region_a),
        ):
            rich_tc = rich.heap[rich_region]
            poor_tc = poor.heap[poor_region]
            for name in sorted(set(rich_tc.vars) - set(poor_tc.vars)):
                tv = rich_tc.vars[name]
                if tv.pinned:
                    continue
                if try_drop_tracking(rich, name):
                    return steps_a, steps_b, True
                if try_focus(poor, poor_region, name):
                    for fieldname in sorted(tv.fields):
                        rich_target = tv.fields[fieldname]
                        fresh = explore_on(poor, name, fieldname)
                        if rich_target is not None:
                            if rich is ctx_a:
                                bind_pair(rich_target, fresh)
                            else:
                                bind_pair(fresh, rich_target)
                    return steps_a, steps_b, True
                # Stuck on this variable; other discrepancies may unblock it.
                continue

        # Same variable tracked on both sides: align field maps.
        for name in sorted(set(tc_a.vars) & set(tc_b.vars)):
            tv_a, tv_b = tc_a.vars[name], tc_b.vars[name]
            for f in sorted(set(tv_a.fields) ^ set(tv_b.fields)):
                rich = ctx_a if f in tv_a.fields else ctx_b
                poor = other(rich)
                rich_tv = tv_a if rich is ctx_a else tv_b
                target = rich_tv.fields[f]
                anchor = anchor_regions(rich)
                target_tc = rich.heap.get(target) if target is not None else None
                if (
                    target is not None
                    and target not in anchor
                    and target_tc is not None
                    and target_tc.is_empty
                    and not target_tc.pinned
                    and len(rich.inbound_refs(target)) == 1
                ):
                    rich.retract(name, f)
                    steps_for(rich).append(Step("V4-Retract", (name, f)))
                else:
                    fresh = explore_on(poor, name, f)
                    if target is not None:
                        if rich is ctx_a:
                            bind_pair(target, fresh)
                        else:
                            bind_pair(fresh, target)
                return steps_a, steps_b, True
            # Both track f: ⊥ on one side forces ⊥ on the other.
            for f in sorted(set(tv_a.fields) & set(tv_b.fields)):
                none_a = tv_a.fields[f] is None
                none_b = tv_b.fields[f] is None
                if none_a != none_b:
                    side = ctx_b if none_a else ctx_a
                    side.invalidate_field(name, f)
                    steps_for(side).append(Step("W-InvalidateField", (name, f)))
                    return steps_a, steps_b, True
    return steps_a, steps_b, False


def _snapshots_match(
    ctx_a: StaticContext, ctx_b: StaticContext, renaming: RegionRenaming
) -> bool:
    probe = ctx_b.clone()
    # Complete the renaming with identity for unmapped regions, avoiding
    # collisions by routing through fresh names when necessary.
    try:
        full = RegionRenaming()
        for region in probe.heap:
            target = renaming.apply(region)
            if not full.bind(region, target):
                return False
        probe.apply_renaming(full)
    except ContextError:
        return False
    return probe.snapshot() == ctx_a.snapshot()


def _finish_match(
    ctx_a: StaticContext,
    ctx_b: StaticContext,
    renaming: RegionRenaming,
    steps_b: List[Step],
) -> None:
    """Complete ``renaming`` to a total injective map on ctx_b's regions and
    apply it, making ctx_b literally equal to ctx_a.  Records a W-RenameAll
    step so the verifier can replay the alignment."""
    full = RegionRenaming()
    used_targets = {t for _s, t in renaming.items()}
    for region in sorted(ctx_b.heap):
        if renaming.has_source(region):
            full.bind(region, renaming.lookup(region))
    for region in sorted(ctx_b.heap):
        if full.has_source(region):
            continue
        if region not in used_targets and not full.has_target(region):
            full.bind(region, region)
        else:
            fresh = ctx_b.supply.fresh()
            full.bind(region, fresh)
    pairs = tuple(sorted(full.items()))
    if any(src != dest for src, dest in pairs):
        ctx_b.apply_renaming(full)
        steps_b.append(Step("W-RenameAll", (pairs,)))
    if ctx_b.snapshot() != ctx_a.snapshot():
        raise UnificationError(
            "internal: contexts diverged after renaming\n"
            f"  left : {ctx_a}\n  right: {ctx_b}"
        )


def match_contexts(
    ctx_a: StaticContext,
    ctx_b: StaticContext,
    live: FrozenSet[str],
    protect: FrozenSet[Region] = frozenset(),
) -> Tuple[RegionRenaming, List[Step], List[Step]]:
    """Transform both contexts (greedily) until ``ctx_b`` *equals* ``ctx_a``
    (a final W-RenameAll aligns region names).

    Returns the B→A renaming plus the steps applied per side.  Raises
    :class:`UnificationError` when the greedy procedure gets stuck.
    """
    tel = _telemetry()
    if tel.enabled:
        tel.inc("unify.greedy.calls")
    steps_a = prune(ctx_a, live, protect)
    steps_b = prune(ctx_b, live, protect)

    if set(ctx_a.gamma) != set(ctx_b.gamma):
        only_a = set(ctx_a.gamma) - set(ctx_b.gamma)
        only_b = set(ctx_b.gamma) - set(ctx_a.gamma)
        if tel.enabled:
            tel.inc("unify.greedy.failures")
        raise UnificationError(
            "branches disagree on live variables: "
            f"only-left={sorted(only_a)} only-right={sorted(only_b)}"
        )
    for name in ctx_a.gamma:
        if str(ctx_a.gamma[name].ty) != str(ctx_b.gamma[name].ty):
            if tel.enabled:
                tel.inc("unify.greedy.failures")
            raise UnificationError(
                f"variable {name!r} has type {ctx_a.gamma[name].ty} in one "
                f"branch and {ctx_b.gamma[name].ty} in the other"
            )

    ca, cb = _coarsen_partitions(ctx_a, ctx_b)
    steps_a.extend(ca)
    steps_b.extend(cb)

    for _ in range(64):  # progress-bounded reconciliation
        renaming, merges_a, merges_b = _build_renaming(ctx_a, ctx_b)
        if not merges_a and not merges_b and _snapshots_match(ctx_a, ctx_b, renaming):
            _finish_match(ctx_a, ctx_b, renaming, steps_b)
            if tel.enabled:
                tel.inc("unify.greedy.matches")
                tel.inc("unify.steps", len(steps_a) + len(steps_b))
            return renaming, steps_a, steps_b
        merged = False
        for ctx, merges, steps in (
            (ctx_a, merges_a, steps_a),
            (ctx_b, merges_b, steps_b),
        ):
            for src, dest in merges:
                if src == dest or src not in ctx.heap or dest not in ctx.heap:
                    continue
                try:
                    ctx.attach(src, dest)
                except ContextError:
                    continue
                steps.append(Step("V5-Attach", (src, dest)))
                merged = True
        if merged:
            continue
        ra, rb, progressed = _reconcile_tracking(ctx_a, ctx_b, renaming)
        steps_a.extend(ra)
        steps_b.extend(rb)
        if not progressed:
            break

    renaming, merges_a, merges_b = _build_renaming(ctx_a, ctx_b)
    if not merges_a and not merges_b and _snapshots_match(ctx_a, ctx_b, renaming):
        _finish_match(ctx_a, ctx_b, renaming, steps_b)
        if tel.enabled:
            tel.inc("unify.greedy.matches")
            tel.inc("unify.steps", len(steps_a) + len(steps_b))
        return renaming, steps_a, steps_b
    if tel.enabled:
        tel.inc("unify.greedy.failures")
    raise UnificationError(
        "could not unify branch contexts:\n"
        f"  left : {ctx_a}\n  right: {ctx_b}"
    )


# ---------------------------------------------------------------------------
# Backtracking fallback (§4.6): bounded search over virtual transformations
# ---------------------------------------------------------------------------


def _candidate_steps(ctx: StaticContext) -> Iterable[Step]:
    """Enumerate all virtual transformations applicable to ``ctx``."""
    for region in sorted(ctx.heap):
        tc = ctx.heap[region]
        if tc.pinned:
            continue
        if tc.is_empty:
            for name in sorted(ctx.vars_in_region(region)):
                yield Step("V1-Focus", (name,))
        for name in sorted(tc.vars):
            tv = tc.vars[name]
            if tv.pinned:
                continue
            if not tv.fields:
                yield Step("V2-Unfocus", (name,))
            for fieldname in sorted(tv.fields):
                target = tv.fields[fieldname]
                if target is None:
                    continue
                target_tc = ctx.heap.get(target)
                if target_tc is not None and target_tc.is_empty and not target_tc.pinned:
                    yield Step("V4-Retract", (name, fieldname))
    regions = sorted(ctx.heap)
    for src, dest in itertools.permutations(regions, 2):
        if not ctx.heap[src].pinned and not ctx.heap[dest].pinned:
            yield Step("V5-Attach", (src, dest))


def search_unify(
    ctx_a: StaticContext,
    ctx_b: StaticContext,
    live: FrozenSet[str],
    max_depth: int = 6,
    max_states: int = 50_000,
) -> Tuple[StaticContext, StaticContext, List[Step], List[Step]]:
    """Exhaustive bounded search for a unifying pair of transformation
    sequences — the worst-case-exponential fallback of §4.6.

    Returns transformed copies of both contexts whose snapshots α-match,
    plus the step sequences that reached them.  Used by benchmarks to
    contrast with the liveness-oracle greedy path, and by the checker as a
    fallback.
    """
    tel = _telemetry()
    if tel.enabled:
        tel.inc("unify.search.calls")
    start_a = ctx_a.clone()
    start_b = ctx_b.clone()
    steps0_a = prune(start_a, live)
    steps0_b = prune(start_b, live)

    def norm(ctx: StaticContext) -> Tuple:
        # Snapshot modulo order-preserving region renaming; cached on the
        # context and invalidated by its mutation generation counter, so
        # re-probing an unchanged state is a dict hit, not a recomputation.
        return ctx.canonical_key()

    State = Tuple[StaticContext, List[Step]]
    frontier_a: Dict[Tuple, State] = {norm(start_a): (start_a, steps0_a)}
    frontier_b: Dict[Tuple, State] = {norm(start_b): (start_b, steps0_b)}
    seen_a: Dict[Tuple, State] = dict(frontier_a)
    seen_b: Dict[Tuple, State] = dict(frontier_b)

    def finish(key: Tuple) -> Tuple[StaticContext, StaticContext, List[Step], List[Step]]:
        if tel.enabled:
            tel.inc("unify.search.matches")
            tel.inc("unify.search.states", len(seen_a) + len(seen_b))
        found_a, path_a = seen_a[key]
        found_b, path_b = seen_b[key]
        # Align region names: both normalize to `key`, so mapping each
        # region through its canonical index gives a B→A renaming.
        canon_b = _canonical_region_order(found_b)
        canon_a = _canonical_region_order(found_a)
        renaming = RegionRenaming()
        for region_b, index in canon_b.items():
            for region_a, index_a in canon_a.items():
                if index_a == index:
                    renaming.bind(region_b, region_a)
        path_b = list(path_b)
        _finish_match(found_a, found_b, renaming, path_b)
        return found_a, found_b, list(path_a), path_b

    for _ in range(max_depth):
        common = set(seen_a) & set(seen_b)
        if common:
            return finish(sorted(common)[0])
        next_a: Dict[Tuple, State] = {}
        next_b: Dict[Tuple, State] = {}
        for frontier, seen, nxt in (
            (frontier_a, seen_a, next_a),
            (frontier_b, seen_b, next_b),
        ):
            for ctx, path in list(frontier.values()):
                for step in _candidate_steps(ctx):
                    if len(seen) > max_states:
                        break
                    candidate = ctx.clone()
                    try:
                        apply_step(candidate, step)
                    except ContextError:
                        continue
                    key = norm(candidate)
                    if key not in seen:
                        state = (candidate, path + [step])
                        seen[key] = state
                        nxt[key] = state
        frontier_a, frontier_b = next_a, next_b
        if not frontier_a and not frontier_b:
            break

    common = set(seen_a) & set(seen_b)
    if common:
        return finish(sorted(common)[0])
    if tel.enabled:
        tel.inc("unify.search.failures")
        tel.inc("unify.search.states", len(seen_a) + len(seen_b))
    raise UnificationError("bounded search failed to unify branch contexts")


def _canonical_region_order(ctx: StaticContext) -> Dict[Region, int]:
    """Canonical index per region, in the same order ``norm`` assigns them."""
    mapping: Dict[Region, int] = {}

    def canon(region: Region) -> None:
        if region not in mapping:
            mapping[region] = len(mapping)

    for name in sorted(ctx.gamma):
        binding = ctx.gamma[name]
        if binding.region is not None:
            canon(binding.region)
    for region in sorted(ctx.heap):
        canon(region)
        for x in sorted(ctx.heap[region].vars):
            for f in sorted(ctx.heap[region].vars[x].fields):
                target = ctx.heap[region].vars[x].fields[f]
                if target is not None:
                    canon(target)
    return mapping
