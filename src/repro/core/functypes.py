"""Function types ``(H; Γ) ⇒ (H'; Γ'; r, τ)`` (§4.8) and their elaboration
from the usable surface syntax (§4.9).

Surface defaults for an unannotated function:

* at input, each parameter occupies a distinct, unpinned region with an
  empty tracking context;
* at output, each parameter remains in that region, again unpinned/empty;
* the result occupies its own fresh, unpinned, empty region.

Annotations adjust this:

* ``consumes x`` — x's region is absent from the output;
* ``before: a ~ b`` — parameters a and b share one input (and output) region;
* ``after: p ~ q`` — the regions of paths p and q coincide at output.  A
  path ``x.f`` (one iso field deep) additionally declares that ``x`` is
  focused with ``f`` tracked in the output context — this is how
  ``get_nth_node``'s ``after: l.hd ~ result`` exposes the relationship
  between its argument and result (fig 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..lang import ast
from .errors import AnnotationError

#: Region *variables* of a function type are small integers ρ0, ρ1, …
RegionVar = int


@dataclass
class OutputTracking:
    """A declared output tracking entry: param ``var`` focused, with iso
    field ``fieldname`` tracked into region variable ``target``."""

    var: str
    fieldname: str
    target: RegionVar


@dataclass
class FuncType:
    """Elaborated function type, phrased over region variables."""

    name: str
    params: List[Tuple[str, ast.Type]]
    return_type: ast.Type
    consumes: Set[str]
    pinned: Set[str]
    input_region: Dict[str, Optional[RegionVar]]
    output_region: Dict[str, Optional[RegionVar]]  # consumed params absent
    result_region: Optional[RegionVar]
    output_tracking: List[OutputTracking]
    input_region_vars: List[RegionVar] = field(default_factory=list)
    output_region_vars: List[RegionVar] = field(default_factory=list)

    def param_type(self, name: str) -> ast.Type:
        for pname, ty in self.params:
            if pname == name:
                return ty
        raise KeyError(name)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[object, object] = {}

    def find(self, x: object) -> object:
        self._parent.setdefault(x, x)
        while self._parent[x] != x:
            self._parent[x] = self._parent[self._parent[x]]
            x = self._parent[x]
        return x

    def union(self, x: object, y: object) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx != ry:
            self._parent[rx] = ry


def _is_regioned(ty: ast.Type) -> bool:
    """Whether values of this type carry a region (structs and maybes of
    structs do; primitives and maybes of primitives do not)."""
    return ast.strip_maybe(ty).is_struct()


def elaborate(fdef: ast.FuncDef, program: ast.Program) -> FuncType:
    """Elaborate a surface function definition into a :class:`FuncType`.

    Raises :class:`AnnotationError` on malformed annotations.
    """
    param_names = [p.name for p in fdef.params]
    param_types = {p.name: p.ty for p in fdef.params}
    pinned = {p.name for p in fdef.params if p.pinned}

    for name in pinned:
        if not _is_regioned(param_types[name]):
            raise AnnotationError(
                f"{fdef.name}: cannot pin primitive parameter {name!r}",
                fdef.span,
            )
        if name in fdef.consumes:
            raise AnnotationError(
                f"{fdef.name}: pinned parameter {name!r} cannot be consumed "
                "(its region is only partially known)",
                fdef.span,
            )
    for left, right in list(fdef.before) + list(fdef.after):
        for path in (left, right):
            if path and path[0] in pinned:
                raise AnnotationError(
                    f"{fdef.name}: pinned parameter {path[0]!r} may not "
                    "appear in before/after relations",
                    fdef.span,
                )

    for name in fdef.consumes:
        if name not in param_types:
            raise AnnotationError(
                f"{fdef.name}: consumes unknown parameter {name!r}", fdef.span
            )
        if not _is_regioned(param_types[name]):
            raise AnnotationError(
                f"{fdef.name}: cannot consume primitive parameter {name!r}",
                fdef.span,
            )

    # ------------------------------------------------------------------
    # Input regions: one slot per regioned parameter, merged by `before`.
    # ------------------------------------------------------------------
    uf_in = _UnionFind()
    for left, right in fdef.before:
        for path in (left, right):
            if len(path) != 1 or path[0] not in param_types:
                raise AnnotationError(
                    f"{fdef.name}: before-paths must be plain parameters, got "
                    f"{'.'.join(path)}",
                    fdef.span,
                )
            if not _is_regioned(param_types[path[0]]):
                raise AnnotationError(
                    f"{fdef.name}: before on primitive parameter {path[0]!r}",
                    fdef.span,
                )
        uf_in.union(left[0], right[0])

    next_var = 0
    input_region: Dict[str, Optional[RegionVar]] = {}
    rep_to_var: Dict[object, RegionVar] = {}
    for name in param_names:
        if not _is_regioned(param_types[name]):
            input_region[name] = None
            continue
        rep = uf_in.find(name)
        if rep not in rep_to_var:
            rep_to_var[rep] = next_var
            next_var += 1
        input_region[name] = rep_to_var[rep]
    input_region_vars = sorted(set(v for v in input_region.values() if v is not None))

    # ------------------------------------------------------------------
    # Output slots: non-consumed params keep their input region; `after`
    # merges output slots (params, the result, and one-field paths).
    # ------------------------------------------------------------------
    uf_out = _UnionFind()
    field_paths: List[Tuple[str, str]] = []

    def out_slot(path: ast.AnnotPath) -> object:
        if path == ("result",):
            if not _is_regioned(fdef.return_type):
                raise AnnotationError(
                    f"{fdef.name}: 'result' in after but return type is "
                    f"{fdef.return_type}",
                    fdef.span,
                )
            return ("result",)
        head = path[0]
        if head not in param_types:
            raise AnnotationError(
                f"{fdef.name}: after-path names unknown parameter {head!r}",
                fdef.span,
            )
        if head in fdef.consumes:
            raise AnnotationError(
                f"{fdef.name}: after-path uses consumed parameter {head!r}",
                fdef.span,
            )
        if len(path) == 1:
            if not _is_regioned(param_types[head]):
                raise AnnotationError(
                    f"{fdef.name}: after on primitive parameter {head!r}",
                    fdef.span,
                )
            return ("param", head)
        if len(path) == 2:
            base_ty = ast.strip_maybe(param_types[head])
            if not base_ty.is_struct():
                raise AnnotationError(
                    f"{fdef.name}: after-path base {head!r} is not a struct",
                    fdef.span,
                )
            sdef = program.struct(base_ty.name)
            if not sdef.has_field(path[1]):
                raise AnnotationError(
                    f"{fdef.name}: struct {sdef.name} has no field {path[1]!r}",
                    fdef.span,
                )
            decl = sdef.field_decl(path[1])
            if not decl.is_iso:
                raise AnnotationError(
                    f"{fdef.name}: after-path field {head}.{path[1]} is not iso "
                    "(non-iso fields share their owner's region)",
                    fdef.span,
                )
            if not _is_regioned(decl.ty):
                raise AnnotationError(
                    f"{fdef.name}: after-path field {head}.{path[1]} is primitive",
                    fdef.span,
                )
            field_paths.append((head, path[1]))
            return ("field", head, path[1])
        raise AnnotationError(
            f"{fdef.name}: after-paths may be at most one field deep "
            f"(got {'.'.join(path)})",
            fdef.span,
        )

    for left, right in fdef.after:
        uf_out.union(out_slot(left), out_slot(right))

    # Non-consumed params keep their input region var at output.  Two params
    # equated by `after` therefore merge their *input* vars' output image.
    out_var_of: Dict[object, RegionVar] = {}
    output_region: Dict[str, Optional[RegionVar]] = {}

    def assign_slot(slot: object) -> RegionVar:
        rep = uf_out.find(slot)
        if rep not in out_var_of:
            nonlocal next_var
            out_var_of[rep] = next_var
            next_var += 1
        return out_var_of[rep]

    # Seed param slots with their input vars where possible: a param not
    # mentioned in `after` stays in its input region.
    for name in param_names:
        if name in fdef.consumes or not _is_regioned(param_types[name]):
            continue
        rep = uf_out.find(("param", name))
        if rep not in out_var_of:
            out_var_of[rep] = input_region[name]  # type: ignore[assignment]

    for name in param_names:
        if name in fdef.consumes:
            continue
        if not _is_regioned(param_types[name]):
            output_region[name] = None
            continue
        output_region[name] = assign_slot(("param", name))

    result_region: Optional[RegionVar]
    if not _is_regioned(fdef.return_type):
        result_region = None
    else:
        result_region = assign_slot(("result",))

    output_tracking = [
        OutputTracking(var, fieldname, assign_slot(("field", var, fieldname)))
        for var, fieldname in field_paths
    ]

    output_region_vars = sorted(
        set(v for v in output_region.values() if v is not None)
        | ({result_region} if result_region is not None else set())
        | {t.target for t in output_tracking}
    )

    return FuncType(
        name=fdef.name,
        params=[(p.name, p.ty) for p in fdef.params],
        return_type=fdef.return_type,
        consumes=set(fdef.consumes),
        pinned=pinned,
        input_region=input_region,
        output_region=output_region,
        result_region=result_region,
        output_tracking=output_tracking,
        input_region_vars=input_region_vars,
        output_region_vars=output_region_vars,
    )
