"""Declaration-level validation of FCL programs.

Checked before type checking proper: all struct/field/parameter/return
types must be declared, iso fields must hold regioned (struct or
maybe-of-struct) values, and profile restrictions on *representability*
(used by the Table 1 baselines) are enforced here — e.g. the
one-object-per-region model cannot declare intra-region references at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..lang import ast
from .errors import TypeError_, UnknownName

if TYPE_CHECKING:
    from .checker import CheckProfile


class DeclarationError(TypeError_):
    """A struct or function declaration is malformed."""


def _check_type(ty: ast.Type, program: ast.Program, where: str, span=None) -> None:
    base = ast.strip_maybe(ty)
    if isinstance(base, ast.StructType) and base.name not in program.structs:
        raise UnknownName(f"{where}: unknown struct type {base.name!r}", span)


def validate_program(program: ast.Program, profile: "CheckProfile") -> None:
    """Raise a :class:`TypeError_` subclass when declarations are invalid.
    Declaration errors carry the declaration's own source span so CLI
    diagnostics can point at the offending field or parameter."""
    for sdef in program.structs.values():
        for fdecl in sdef.fields:
            where = f"struct {sdef.name}, field {fdecl.name}"
            _check_type(fdecl.ty, program, where, fdecl.span)
            regioned = ast.strip_maybe(fdecl.ty).is_struct()
            if fdecl.is_iso and not regioned:
                raise DeclarationError(
                    f"{where}: iso fields must hold struct or maybe-of-struct "
                    f"values, not {fdecl.ty}",
                    fdecl.span,
                )
            if (
                not profile.allow_intra_region_refs
                and regioned
                and not fdecl.is_iso
            ):
                raise DeclarationError(
                    f"{where}: profile {profile.name!r} forbids intra-region "
                    "(non-iso) references between objects; every object "
                    "reference must be a unique/affine edge",
                    fdecl.span,
                )

    for fdef in program.funcs.values():
        where = f"function {fdef.name}"
        seen = set()
        for param in fdef.params:
            if param.name in seen:
                raise DeclarationError(
                    f"{where}: duplicate parameter {param.name!r}", param.span
                )
            seen.add(param.name)
            _check_type(
                param.ty, program, f"{where}, parameter {param.name}", param.span
            )
        _check_type(fdef.return_type, program, f"{where}, return type", fdef.span)
