"""Static contexts of the type system (§4.3–§4.5, figs 9 & 11).

The heap context ``H`` is a set of *tracking contexts* ``r°⟨x°[f ↦ r, …], …⟩``:
each region capability ``r`` carries the variables currently *focused* in it
and, per focused variable, the iso fields currently *tracked* with their
target regions.  Pinning (the ``°`` annotation) marks partial information
introduced by framing: pinned regions/variables admit no new tracking.

The variable context ``Γ`` maps in-scope variables to a type and region.

Virtual transformations V1–V5 (fig 11) are methods on :class:`StaticContext`:

* V1 Focus      — begin tracking a variable in an empty, unpinned region.
* V2 Unfocus    — stop tracking a variable with no tracked fields.
* V3 Explore    — track an iso field, introducing a fresh target region.
* V4 Retract    — untrack an iso field whose target region is empty,
                  dropping that region (and invalidating other refs to it).
* V5 Attach     — merge one region into another, substituting everywhere.

Two admissible weakenings used at block/function boundaries (see DESIGN.md):
dropping dead variable bindings, and dropping whole regions (which ⊥-invalidates
inbound tracked references).

An *invalidated* tracked field (⊥, stored as ``None``) arises from region
splits (``if disconnected``) and consumed frame targets; it must be
reassigned before its owner can be unfocused — exactly the "l.hd invalid at
branch start" behaviour of fig 5.

Persistent structure sharing
----------------------------

The inner :class:`TrackingContext`/:class:`TrackedVar` objects are treated
as *persistent*: once published to a sibling by :meth:`StaticContext.clone`,
an object is never written again — updates *path-copy* a private replacement
and splice it into the owner's heap.  :class:`StaticContext` itself is a
mutable, thread-confined **handle** over that shared structure (a transient,
in persistent-data-structure terms).  Which inner objects the handle may
still write in place is tracked *in the handle* (``_owned_tc``/``_owned_tv``
identity maps), never on the shared objects, so:

* ``clone()`` performs no writes to any shared object — it only clears the
  parent handle's ownership.  Two threads may therefore hold sibling clones
  (or check different functions against the same warm program session)
  without any synchronisation: everything reachable from both is immutable.
* The first write after a clone *path-copies* exactly the touched spine
  (outer dict, tracking context, tracked var) via
  :meth:`StaticContext.own_heap` / :meth:`own_gamma` / :meth:`own_tracking`
  / :meth:`own_tracked`.

Every mutating path also bumps a generation counter (:meth:`mark_dirty`),
which invalidates the cached :meth:`snapshot` and :meth:`canonical_key` —
those make the search loop of ``unify.search_unify`` and the per-node
derivation snapshots of the checker cheap.

The discipline for code that reaches inside the heap structure (framing,
derivation replay): obtain the inner object through ``own_tracking`` /
``own_tracked`` *before* mutating it, and call ``mark_dirty()`` afterwards.
Reading through ``heap``/``gamma``/``tracking`` directly stays fine.  Code
that assembles a context graph from raw parts it exclusively owns (e.g. the
verifier's snapshot reconstruction) should finish with
:meth:`claim_ownership` so later in-place edits need not path-copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..lang import ast
from ..telemetry import registry as _telemetry
from .errors import PinnedViolation, TypeError_
from .regions import Region, RegionRenaming, RegionSupply

#: Snapshot types (canonical, hashable forms used by derivations/verifier).
FieldsSnap = Tuple[Tuple[str, int], ...]  # field -> region id (-1 for ⊥)
VarSnap = Tuple[str, bool, FieldsSnap]
RegionSnap = Tuple[int, bool, Tuple[VarSnap, ...]]
HeapSnap = Tuple[RegionSnap, ...]
GammaSnap = Tuple[Tuple[str, str, int], ...]  # name, type, region id (-1 = prim)
ContextSnap = Tuple[HeapSnap, GammaSnap]


class ContextError(TypeError_):
    """A virtual transformation's precondition failed."""


@dataclass
class TrackedVar:
    """``x°[f ↦ r, …]`` — a focused variable and its tracked iso fields.

    A field mapped to ``None`` is invalidated (⊥): the static target is
    unknown, so the field must be reassigned before use or unfocus.

    Instances are immutable once published to a sibling context; only the
    handle that privately owns one (see ``StaticContext._owned_tv``) may
    write it in place.
    """

    pinned: bool = False
    fields: Dict[str, Optional[Region]] = field(default_factory=dict)

    def clone(self) -> "TrackedVar":
        return TrackedVar(self.pinned, dict(self.fields))

    def snapshot(self, name: str) -> VarSnap:
        fields = tuple(
            sorted(
                (f, -1 if r is None else r.ident) for f, r in self.fields.items()
            )
        )
        return (name, self.pinned, fields)


@dataclass
class TrackingContext:
    """``r°⟨X⟩`` — the set of variables currently focused in region r.

    Immutable once published to a sibling context (see :class:`TrackedVar`).
    """

    pinned: bool = False
    vars: Dict[str, TrackedVar] = field(default_factory=dict)

    def clone(self) -> "TrackingContext":
        return TrackingContext(
            self.pinned, {name: tv.clone() for name, tv in self.vars.items()}
        )

    @property
    def is_empty(self) -> bool:
        return not self.vars

    def snapshot(self, region: Region) -> RegionSnap:
        vars_snap = tuple(
            sorted(tv.snapshot(name) for name, tv in self.vars.items())
        )
        return (region.ident, self.pinned, vars_snap)


@dataclass
class Binding:
    """A Γ entry: the variable's type and region (None for primitives).

    Treated as immutable by :class:`StaticContext`: updates replace the
    Binding object rather than assigning its fields, so clones can share
    Γ entries safely.
    """

    ty: ast.Type
    region: Optional[Region]

    def clone(self) -> "Binding":
        return Binding(self.ty, self.region)


class StaticContext:
    """The pair (H; Γ) plus the fresh-region supply.

    All mutating operations work in place on the handle; use :meth:`clone`
    before branching (cheap: persistent structure sharing).  A handle is
    thread-confined — share the *structure* by cloning, never the handle.
    Operations raise :class:`ContextError` when a virtual transformation's
    side conditions fail.
    """

    def __init__(self, supply: Optional[RegionSupply] = None):
        self.heap: Dict[Region, TrackingContext] = {}
        self.gamma: Dict[str, Binding] = {}
        self.supply = supply if supply is not None else RegionSupply()
        #: Bumped on every mutation; identifies a context *state* cheaply.
        self._generation: int = 0
        self._snap: Optional[ContextSnap] = None
        self._canon: Optional[Tuple] = None
        # Whether the outer heap/Γ dicts may be aliased by a sibling clone.
        self._heap_shared: bool = False
        self._gamma_shared: bool = False
        # Inner objects this handle may still write in place, keyed by
        # id() with an identity check on lookup (the stored strong
        # reference keeps the id from being recycled).  Everything *not*
        # in here is treated as published/immutable and path-copied on
        # first write.  Cleared by clone(): afterwards both handles see
        # only shared, frozen structure.
        self._owned_tc: Dict[int, TrackingContext] = {}
        self._owned_tv: Dict[int, TrackedVar] = {}

    # -- persistence machinery ----------------------------------------------

    def mark_dirty(self) -> None:
        """Invalidate cached snapshots after a mutation."""
        self._generation += 1
        self._snap = None
        self._canon = None

    _dirty = mark_dirty  # internal alias

    @property
    def generation(self) -> int:
        return self._generation

    def own_heap(self) -> Dict[Region, TrackingContext]:
        """The heap dict, path-copied if a sibling aliases it.
        Obtain it through here before any structural write."""
        if self._heap_shared:
            self.heap = dict(self.heap)
            self._heap_shared = False
            tel = _telemetry()
            if tel.enabled:
                tel.inc("contexts.persist.heap_copies")
        return self.heap

    def own_gamma(self) -> Dict[str, Binding]:
        """The Γ dict, path-copied if a sibling aliases it."""
        if self._gamma_shared:
            self.gamma = dict(self.gamma)
            self._gamma_shared = False
            tel = _telemetry()
            if tel.enabled:
                tel.inc("contexts.persist.gamma_copies")
        return self.gamma

    def own_tracking(self, region: Region) -> TrackingContext:
        """The tracking context of ``region``, path-copied to a private
        replacement unless this handle already owns it.  Callers may mutate
        ``pinned``/``vars`` on the result but must ``mark_dirty()``
        afterwards."""
        tc = self.tracking(region)
        if self._owned_tc.get(id(tc)) is tc:
            return tc
        owned = TrackingContext(tc.pinned, dict(tc.vars))
        self._owned_tc[id(owned)] = owned
        self.own_heap()[region] = owned
        tel = _telemetry()
        if tel.enabled:
            tel.inc("contexts.persist.tc_copies")
        return owned

    def own_tracked(self, region: Region, name: str) -> TrackedVar:
        """The tracked-var entry for ``name`` in ``region``, path-copied
        (along with its tracking context) unless already owned."""
        tc = self.own_tracking(region)
        tv = tc.vars[name]
        if self._owned_tv.get(id(tv)) is tv:
            return tv
        owned = TrackedVar(tv.pinned, dict(tv.fields))
        self._owned_tv[id(owned)] = owned
        tc.vars[name] = owned
        tel = _telemetry()
        if tel.enabled:
            tel.inc("contexts.persist.tv_copies")
        return owned

    def _adopt_tc(self, tc: TrackingContext) -> TrackingContext:
        """Register a freshly built tracking context as privately owned."""
        self._owned_tc[id(tc)] = tc
        return tc

    def _adopt_tv(self, tv: TrackedVar) -> TrackedVar:
        """Register a freshly built tracked var as privately owned."""
        self._owned_tv[id(tv)] = tv
        return tv

    def claim_ownership(self) -> None:
        """Declare every inner object privately owned.

        Only sound when the caller just assembled the whole graph from
        parts nothing else references (e.g. rebuilding a context from a
        snapshot); afterwards in-place edits skip path-copying."""
        self._heap_shared = False
        self._gamma_shared = False
        for tc in self.heap.values():
            self._owned_tc[id(tc)] = tc
            for tv in tc.vars.values():
                self._owned_tv[id(tv)] = tv

    # -- basics ------------------------------------------------------------

    def clone(self) -> "StaticContext":
        """An independent copy, O(1): both the outer dicts and the inner
        tracking structure are shared persistently with the sibling.  No
        shared object is written — the parent handle merely relinquishes
        in-place ownership, so cloning is safe even when the source is
        concurrently cloned by another thread."""
        other = StaticContext(self.supply)  # supply is shared: freshness is global
        other.heap = self.heap
        other.gamma = self.gamma
        other._heap_shared = True
        other._gamma_shared = True
        other._snap = self._snap
        other._canon = self._canon
        # Everything reachable is now aliased by the sibling: future writes
        # on either handle must path-copy.
        self._heap_shared = True
        self._gamma_shared = True
        self._owned_tc.clear()
        self._owned_tv.clear()
        tel = _telemetry()
        if tel.enabled:
            tel.inc("contexts.clones")
            # What an eager deep clone would have allocated: the two outer
            # dicts, one dict per tracking context, one per tracked var.
            eager = 2 + len(self.heap)
            for tc in self.heap.values():
                eager += len(tc.vars)
            tel.inc("contexts.clone.dicts_eager", eager)
        return other

    def take_from(self, other: "StaticContext") -> None:
        """Overwrite this context in place with ``other``'s contents
        (``other`` is discarded by the caller)."""
        self.heap = other.heap
        self.gamma = other.gamma
        self._heap_shared = other._heap_shared
        self._gamma_shared = other._gamma_shared
        # Adopt the donor's in-place ownership, and strip it from the donor
        # so a stale reference cannot write structure we now hold.
        self._owned_tc = other._owned_tc
        self._owned_tv = other._owned_tv
        other._owned_tc = {}
        other._owned_tv = {}
        other._heap_shared = True
        other._gamma_shared = True
        self._generation += 1
        self._snap = other._snap
        self._canon = other._canon

    def snapshot(self) -> ContextSnap:
        if self._snap is not None:
            tel = _telemetry()
            if tel.enabled:
                tel.inc("contexts.snapshot.hits")
            return self._snap
        tel = _telemetry()
        if tel.enabled:
            tel.inc("contexts.snapshot.misses")
        heap = tuple(
            sorted(tc.snapshot(r) for r, tc in self.heap.items())
        )
        gamma = tuple(
            sorted(
                (
                    name,
                    str(b.ty),
                    -1 if b.region is None else b.region.ident,
                )
                for name, b in self.gamma.items()
            )
        )
        self._snap = (heap, gamma)
        return self._snap

    def canonical_key(self) -> Tuple:
        """The snapshot with region idents renumbered in first-use order
        (Γ first, then the sorted heap) — equal for alpha-equivalent
        contexts.  Cached per generation; ``search_unify`` uses it for the
        visited-set."""
        if self._canon is not None:
            tel = _telemetry()
            if tel.enabled:
                tel.inc("contexts.canon.hits")
            return self._canon
        tel = _telemetry()
        if tel.enabled:
            tel.inc("contexts.canon.misses")
        mapping: Dict[int, int] = {}

        def canon(ident: int) -> int:
            return mapping.setdefault(ident, len(mapping))

        heap, gamma = self.snapshot()
        canon_gamma = tuple(
            (name, ty, canon(r) if r >= 0 else -1) for name, ty, r in gamma
        )
        canon_heap = tuple(
            sorted(
                (
                    canon(rid),
                    pinned,
                    tuple(
                        (
                            x,
                            p,
                            tuple(
                                (f, canon(t) if t >= 0 else -1)
                                for f, t in fields
                            ),
                        )
                        for x, p, fields in vars_snap
                    ),
                )
                for rid, pinned, vars_snap in heap
            )
        )
        self._canon = (canon_heap, canon_gamma)
        return self._canon

    def __str__(self) -> str:
        regions = []
        for r, tc in sorted(self.heap.items()):
            pin = "^" if tc.pinned else ""
            inner = ", ".join(
                f"{x}{'^' if tv.pinned else ''}["
                + ", ".join(
                    f"{f}↦{'⊥' if t is None else t}" for f, t in sorted(tv.fields.items())
                )
                + "]"
                for x, tv in sorted(tc.vars.items())
            )
            regions.append(f"{r}{pin}⟨{inner}⟩")
        gamma = ", ".join(
            f"{x}: {b.region or '·'} {b.ty}" for x, b in sorted(self.gamma.items())
        )
        return "H = {" + "; ".join(regions) + "} | Γ = {" + gamma + "}"

    # -- region management ---------------------------------------------------

    def fresh_region(self) -> Region:
        """Create a fresh, empty, unpinned region and add it to H."""
        region = self.supply.fresh()
        self.own_heap()[region] = self._adopt_tc(TrackingContext())
        self._dirty()
        return region

    def add_region(self, region: Region, pinned: bool = False) -> None:
        if region in self.heap:
            raise ContextError(f"region {region} already present")
        self.own_heap()[region] = self._adopt_tc(TrackingContext(pinned=pinned))
        self._dirty()

    def has_region(self, region: Region) -> bool:
        return region in self.heap

    def tracking(self, region: Region) -> TrackingContext:
        try:
            return self.heap[region]
        except KeyError:
            raise ContextError(f"region {region} not in heap context") from None

    def set_region_pinned(self, region: Region, pinned: bool) -> None:
        """Set the pin mark on a region's tracking context."""
        tc = self.own_tracking(region)
        tc.pinned = pinned
        self._dirty()

    def set_var_pinned(self, region: Region, name: str, pinned: bool) -> None:
        """Set the pin mark on a tracked variable."""
        tv = self.own_tracked(region, name)
        tv.pinned = pinned
        self._dirty()

    # -- Γ management --------------------------------------------------------

    def bind(self, name: str, ty: ast.Type, region: Optional[Region]) -> None:
        if region is not None and region not in self.heap:
            raise ContextError(f"cannot bind {name} in absent region {region}")
        self.own_gamma()[name] = Binding(ty, region)
        self._dirty()

    def set_binding(self, name: str, ty: ast.Type, region: Optional[Region]) -> None:
        """Install a Γ entry without the membership check (derivation
        replay, frame restore)."""
        self.own_gamma()[name] = Binding(ty, region)
        self._dirty()

    def lookup(self, name: str) -> Binding:
        try:
            return self.gamma[name]
        except KeyError:
            raise ContextError(f"variable {name!r} is not bound") from None

    def has_var(self, name: str) -> bool:
        return name in self.gamma

    def drop_var(self, name: str) -> None:
        """Weakening: remove a Γ binding.  Any tracking entry for the
        variable remains as a ghost until unfocused or its region dropped."""
        if name in self.gamma:
            del self.own_gamma()[name]
            self._dirty()

    def vars_in_region(self, region: Region) -> List[str]:
        return [x for x, b in self.gamma.items() if b.region == region]

    # -- queries ---------------------------------------------------------------

    def tracked_region_of(self, name: str) -> Optional[Region]:
        """The region in whose tracking context ``name`` appears, if any."""
        for region, tc in self.heap.items():
            if name in tc.vars:
                return region
        return None

    def tracked_var(self, name: str) -> Optional[TrackedVar]:
        region = self.tracked_region_of(name)
        if region is None:
            return None
        return self.heap[region].vars[name]

    def inbound_refs(self, region: Region) -> List[Tuple[Region, str, str]]:
        """Tracked fields (owner region, owner var, field) targeting ``region``."""
        refs = []
        for r, tc in self.heap.items():
            for x, tv in tc.vars.items():
                for f, target in tv.fields.items():
                    if target == region:
                        refs.append((r, x, f))
        return refs

    # -- virtual transformations (fig 11) --------------------------------------

    def focus(self, name: str) -> Region:
        """V1 Focus: begin tracking ``name`` in its (empty, unpinned) region."""
        binding = self.lookup(name)
        if binding.region is None:
            raise ContextError(f"cannot focus {name!r}: primitive value")
        tc = self.tracking(binding.region)
        if tc.pinned:
            raise PinnedViolation(f"cannot focus {name!r}: region {binding.region} is pinned")
        if not tc.is_empty:
            raise ContextError(
                f"cannot focus {name!r}: region {binding.region} tracking context "
                f"is not empty (tracked: {sorted(tc.vars)})"
            )
        self.own_tracking(binding.region).vars[name] = self._adopt_tv(TrackedVar())
        self._dirty()
        return binding.region

    def unfocus(self, name: str) -> Region:
        """V2 Unfocus: stop tracking ``name``; requires no tracked fields."""
        region = self.tracked_region_of(name)
        if region is None:
            raise ContextError(f"cannot unfocus {name!r}: not tracked")
        tv = self.heap[region].vars[name]
        if tv.pinned:
            raise PinnedViolation(f"cannot unfocus pinned variable {name!r}")
        if tv.fields:
            raise ContextError(
                f"cannot unfocus {name!r}: fields still tracked "
                f"({sorted(tv.fields)})"
            )
        del self.own_tracking(region).vars[name]
        self._dirty()
        return region

    def explore(self, name: str, fieldname: str) -> Region:
        """V3 Explore: track iso field ``name.fieldname`` into a fresh region.

        Sound because an untracked iso field dominates its target subgraph,
        so that subgraph is a region of its own.
        """
        region = self.tracked_region_of(name)
        if region is None:
            raise ContextError(f"cannot explore {name}.{fieldname}: {name!r} not focused")
        tv = self.heap[region].vars[name]
        if tv.pinned:
            raise PinnedViolation(
                f"cannot explore {name}.{fieldname}: variable is pinned"
            )
        if fieldname in tv.fields:
            raise ContextError(f"field {name}.{fieldname} is already tracked")
        target = self.fresh_region()
        self.own_tracked(region, name).fields[fieldname] = target
        self._dirty()
        return target

    def explore_at(self, name: str, fieldname: str, target: Region) -> None:
        """V3 Explore with a caller-chosen fresh target (derivation replay).

        Same preconditions as :meth:`explore`; ``target`` must be new."""
        region = self.tracked_region_of(name)
        if region is None:
            raise ContextError(f"cannot explore {name}.{fieldname}: {name!r} not focused")
        tv = self.heap[region].vars[name]
        if tv.pinned:
            raise PinnedViolation(
                f"cannot explore {name}.{fieldname}: variable is pinned"
            )
        if fieldname in tv.fields:
            raise ContextError(f"field {name}.{fieldname} is already tracked")
        self.add_region(target)
        self.own_tracked(region, name).fields[fieldname] = target
        self._dirty()

    def retract(self, name: str, fieldname: str) -> Region:
        """V4 Retract: untrack ``name.fieldname``; its target region must be
        empty and unpinned.  Drops the target region, invalidating any other
        references into it (Γ bindings die; other tracked fields become ⊥)."""
        region = self.tracked_region_of(name)
        if region is None:
            raise ContextError(f"cannot retract {name}.{fieldname}: {name!r} not focused")
        tv = self.heap[region].vars[name]
        if fieldname not in tv.fields:
            raise ContextError(f"field {name}.{fieldname} is not tracked")
        target = tv.fields[fieldname]
        if target is None:
            raise ContextError(
                f"cannot retract invalidated field {name}.{fieldname}; reassign it first"
            )
        target_tc = self.tracking(target)
        if target_tc.pinned:
            raise PinnedViolation(
                f"cannot retract {name}.{fieldname}: target region {target} is pinned"
            )
        if not target_tc.is_empty:
            raise ContextError(
                f"cannot retract {name}.{fieldname}: target region {target} "
                f"still tracks {sorted(target_tc.vars)}"
            )
        del self.own_tracked(region, name).fields[fieldname]
        del self.own_heap()[target]
        # "invalidating any other references to the retracted target's
        # region" (§4.5): Γ bindings die, other tracked fields become ⊥.
        for other in self.vars_in_region(target):
            del self.own_gamma()[other]
        self._invalidate_refs_to(target)
        self._dirty()
        return target

    def attach(self, source: Region, dest: Region) -> None:
        """V5 Attach: merge ``source`` into ``dest``; substitute everywhere."""
        if source == dest:
            return
        source_tc = self.tracking(source)
        dest_tc = self.tracking(dest)
        if source_tc.pinned or dest_tc.pinned:
            raise PinnedViolation(
                f"cannot attach {source} to {dest}: pinned region"
            )
        overlap = set(source_tc.vars) & set(dest_tc.vars)
        if overlap:
            raise ContextError(
                f"cannot attach {source} to {dest}: duplicate tracked vars {sorted(overlap)}"
            )
        # The moved tracked vars keep whatever ownership state they had: a
        # var owned inside an owned source stays in-place-writable, one
        # aliased by a sibling stays frozen and path-copies on first write.
        self.own_tracking(dest).vars.update(source_tc.vars)
        del self.own_heap()[source]
        self._substitute_region(source, dest)
        self._dirty()

    # -- weakenings ----------------------------------------------------------

    def drop_region(self, region: Region) -> None:
        """Weakening: discard a region capability entirely.

        Γ bindings in the region are dropped; tracked fields elsewhere that
        target the region are invalidated (⊥); the region's own tracking
        context (including outbound field info) is discarded.  Sound because
        the region's objects become permanently unreachable.
        """
        self.tracking(region)  # existence check
        del self.own_heap()[region]
        for name in self.vars_in_region(region):
            del self.own_gamma()[name]
        self._invalidate_refs_to(region)
        self._dirty()

    def consume_region_for_send(self, region: Region) -> None:
        """Remove a region for T16 Send.  Caller must have established the
        side conditions (empty tracking, no inbound tracked refs)."""
        tc = self.tracking(region)
        if not tc.is_empty:
            raise ContextError(f"send: region {region} tracking context not empty")
        if tc.pinned:
            raise PinnedViolation(f"send: region {region} is pinned")
        if self.inbound_refs(region):
            raise ContextError(f"send: region {region} is the target of tracked fields")
        del self.own_heap()[region]
        for name in self.vars_in_region(region):
            del self.own_gamma()[name]
        self._dirty()

    def invalidate_field(self, name: str, fieldname: str) -> None:
        """Mark a tracked field ⊥ (used by if-disconnected splits and frames)."""
        region = self.tracked_region_of(name)
        if region is None or fieldname not in self.heap[region].vars[name].fields:
            raise ContextError(f"{name}.{fieldname} is not tracked")
        self.own_tracked(region, name).fields[fieldname] = None
        self._dirty()

    def set_field_target(self, name: str, fieldname: str, target: Region) -> None:
        """T7 Isolated-Field-Assignment: update the tracked target region."""
        region = self.tracked_region_of(name)
        if region is None:
            raise ContextError(f"{name!r} is not focused")
        tv = self.heap[region].vars[name]
        if tv.pinned:
            raise PinnedViolation(f"cannot assign field of pinned variable {name!r}")
        if fieldname not in tv.fields:
            raise ContextError(f"field {name}.{fieldname} is not tracked")
        if target not in self.heap:
            raise ContextError(f"target region {target} not in heap context")
        self.own_tracked(region, name).fields[fieldname] = target
        self._dirty()

    def install_tracked_field(self, name: str, fieldname: str, target: Optional[Region]) -> None:
        """Unconditionally (re)install a tracked field on a focused variable
        — used when materialising function-signature output tracking."""
        region = self.tracked_region_of(name)
        if region is None:
            raise ContextError(f"{name!r} is not focused")
        self.own_tracked(region, name).fields[fieldname] = target
        self._dirty()

    def rename_tracked(self, region: Region, old: str, new: str) -> None:
        """Move a tracking entry to a new (ghost) name within its region."""
        tc = self.own_tracking(region)
        if old not in tc.vars:
            raise ContextError(f"{old!r} is not tracked in {region}")
        tc.vars[new] = tc.vars.pop(old)
        self._dirty()

    # -- renaming ---------------------------------------------------------------

    def rename_region(self, old: Region, new: Region) -> None:
        """Alpha-rename a region (used to align contexts during unification).

        ``new`` must not already be present.
        """
        if old == new:
            return
        if new in self.heap:
            raise ContextError(f"rename target {new} already present")
        heap = self.own_heap()
        tc = heap.pop(old)
        heap[new] = tc
        self._substitute_region(old, new)
        self._dirty()

    def apply_renaming(self, renaming: RegionRenaming) -> None:
        """Apply a simultaneous injective renaming to the whole context."""
        new_heap: Dict[Region, TrackingContext] = {}
        for region, tc in self.heap.items():
            new_heap[renaming.apply(region)] = tc
        if len(new_heap) != len(self.heap):
            raise ContextError("renaming is not injective on this context")
        self.heap = new_heap
        self._heap_shared = False
        for region in list(self.heap):
            tc = self.heap[region]
            for name, tv in tc.vars.items():
                if any(
                    t is not None and renaming.apply(t) != t
                    for t in tv.fields.values()
                ):
                    owned = self.own_tracked(region, name)
                    owned.fields = {
                        f: (None if t is None else renaming.apply(t))
                        for f, t in owned.fields.items()
                    }
        for name, binding in list(self.gamma.items()):
            if binding.region is not None:
                image = renaming.apply(binding.region)
                if image != binding.region:
                    self.own_gamma()[name] = Binding(binding.ty, image)
        self._dirty()

    # -- internals ---------------------------------------------------------------

    def _substitute_region(self, old: Region, new: Region) -> None:
        for region in list(self.heap):
            tc = self.heap[region]
            for name, tv in tc.vars.items():
                if any(target == old for target in tv.fields.values()):
                    owned = self.own_tracked(region, name)
                    owned.fields = {
                        f: (new if t == old else t)
                        for f, t in owned.fields.items()
                    }
        for name, binding in list(self.gamma.items()):
            if binding.region == old:
                self.own_gamma()[name] = Binding(binding.ty, new)

    def _invalidate_refs_to(self, region: Region) -> None:
        for r in list(self.heap):
            tc = self.heap[r]
            for name, tv in tc.vars.items():
                if any(target == region for target in tv.fields.values()):
                    owned = self.own_tracked(r, name)
                    owned.fields = {
                        f: (None if t == region else t)
                        for f, t in owned.fields.items()
                    }

    # -- well-formedness ---------------------------------------------------------

    def check_well_formed(self) -> None:
        """Raise ContextError when the context violates well-formedness:
        duplicate tracked variables across regions, Γ/tracking region
        disagreement, or dangling region references."""
        seen: Set[str] = set()
        for region, tc in self.heap.items():
            for x, tv in tc.vars.items():
                if x in seen:
                    raise ContextError(f"variable {x!r} tracked in two regions")
                seen.add(x)
                if x in self.gamma and self.gamma[x].region != region:
                    raise ContextError(
                        f"{x!r} tracked in {region} but bound in {self.gamma[x].region}"
                    )
                for f, target in tv.fields.items():
                    if target is not None and target not in self.heap:
                        raise ContextError(
                            f"tracked field {x}.{f} targets absent region {target}"
                        )
        for name, binding in self.gamma.items():
            if binding.region is not None and binding.region not in self.heap:
                raise ContextError(
                    f"{name!r} bound in absent region {binding.region}"
                )


def contexts_equal(a: StaticContext, b: StaticContext) -> bool:
    """Structural equality of snapshots (no renaming)."""
    return a.snapshot() == b.snapshot()
