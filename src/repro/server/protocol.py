"""The ``repro-rpc/1`` wire protocol: JSON lines over TCP or a Unix socket.

One request per line, one response per line, in order.  The schema is not
invented separately from the programmatic API: a response ``result`` is
exactly the ``to_dict()`` form of the matching :mod:`repro.api` dataclass
(:class:`~repro.api.CheckResult` for ``check``, and so on), which is what
makes server/in-process byte-identity a checkable property.

Request frame::

    {"rpc": "repro-rpc/1", "id": 7, "method": "check",
     "params": {"source": "...", "filename": "list.fcl"},
     "trace": {"id": "6fb2c0...", "span": "a41b...", "sampled": true}}

``trace`` is optional distributed-tracing context (see
``telemetry/tracer.py``): when present, the daemon opens its per-request
span as a child of the client's span, so one trace tree spans both
processes.  A malformed ``trace`` is ignored, never an error.

Success / error responses::

    {"rpc": "repro-rpc/1", "id": 7, "ok": true,  "result": {...}}
    {"rpc": "repro-rpc/1", "id": 7, "ok": false,
     "error": {"code": "timeout", "message": "..."}}

``id`` is echoed verbatim (any JSON scalar; ``null`` when absent).
Protocol-level failures use the error envelope; *program*-level failures
(a type error in the submitted source) are successful RPCs whose result
carries ``ok: false`` plus :class:`~repro.api.Diagnostic` records — the
same split as the facade.

Error codes: ``malformed-frame`` · ``too-large`` · ``invalid-request`` ·
``unknown-method`` · ``overloaded`` · ``timeout`` · ``shutting-down`` ·
``internal``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

RPC_SCHEMA = "repro-rpc/1"

#: Methods a server understands.  ``ping``/``stats``/``metrics``/
#: ``trace``/``shutdown`` are answered by the daemon itself; the rest
#: dispatch to the Service.
METHODS = (
    "ping",
    "check",
    "verify",
    "run",
    "batch",
    "stats",
    "metrics",
    "trace",
    "shutdown",
)

# Defaults, overridable per server via ServerConfig / `repro serve` flags.
MAX_FRAME_BYTES = 4 * 1024 * 1024
DEFAULT_TIMEOUT_S = 30.0
DEFAULT_MAX_QUEUE = 16
DEFAULT_MAX_STEPS = 5_000_000

E_MALFORMED = "malformed-frame"
E_TOO_LARGE = "too-large"
E_INVALID = "invalid-request"
E_UNKNOWN_METHOD = "unknown-method"
E_OVERLOADED = "overloaded"
E_TIMEOUT = "timeout"
E_SHUTTING_DOWN = "shutting-down"
E_INTERNAL = "internal"


class RpcError(Exception):
    """A protocol-level failure that becomes an error envelope."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


def encode_response(request_id: Any, result: Dict[str, Any]) -> bytes:
    return (
        json.dumps(
            {"rpc": RPC_SCHEMA, "id": request_id, "ok": True, "result": result},
            separators=(",", ":"),
        )
        + "\n"
    ).encode("utf-8")


def encode_error(request_id: Any, code: str, message: str) -> bytes:
    return (
        json.dumps(
            {
                "rpc": RPC_SCHEMA,
                "id": request_id,
                "ok": False,
                "error": {"code": code, "message": message},
            },
            separators=(",", ":"),
        )
        + "\n"
    ).encode("utf-8")


def parse_request(
    line: bytes,
) -> Tuple[Any, str, Dict[str, Any], Optional[Dict[str, Any]]]:
    """Decode and validate one request frame.

    Returns ``(id, method, params, trace)``; raises :class:`RpcError`.
    The id is recovered on a best-effort basis even from invalid frames
    so the error envelope can still be correlated by the client.

    ``trace`` is the frame's optional trace-context object (``{"id":
    str, "span": str, "sampled": bool}``) — validated softly: a
    malformed context degrades to ``None`` rather than failing the
    request, because observability must never break a caller.
    """
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise RpcError(E_MALFORMED, f"frame is not valid JSON: {exc}")
    if not isinstance(frame, dict):
        raise RpcError(E_MALFORMED, "frame must be a JSON object")
    request_id = frame.get("id")
    if frame.get("rpc") != RPC_SCHEMA:
        raise _invalid(
            request_id, f"missing or unsupported rpc version (want {RPC_SCHEMA!r})"
        )
    method = frame.get("method")
    if not isinstance(method, str):
        raise _invalid(request_id, "method must be a string")
    if method not in METHODS:
        exc = RpcError(E_UNKNOWN_METHOD, f"unknown method {method!r}")
        exc.request_id = request_id
        raise exc
    params = frame.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise _invalid(request_id, "params must be an object")
    trace = frame.get("trace")
    if not (
        isinstance(trace, dict)
        and isinstance(trace.get("id"), str)
        and isinstance(trace.get("span"), str)
    ):
        trace = None
    return request_id, method, params, trace


def _invalid(request_id: Any, message: str) -> RpcError:
    exc = RpcError(E_INVALID, message)
    exc.request_id = request_id
    return exc


def recovered_id(exc: RpcError) -> Optional[Any]:
    return getattr(exc, "request_id", None)
