"""Pre-forked worker fleet behind ``repro serve --workers N``.

The single-process daemon executes requests on a thread pool, which the
GIL caps at roughly one core of checking throughput.  The fleet keeps
the same acceptor — one asyncio loop owning the sockets, the framing,
admission control, timeouts, and drain — but hands each admitted request
to one of N **pre-forked worker processes**, each holding its own warm
:class:`~repro.pipeline.session.ProgramSession` LRU and result memo, all
sharing one content-addressed certificate store (safe because verified
certificates are immutable and keyed by content — see
:mod:`repro.pipeline.cache`).

Plumbing follows :mod:`repro.pipeline.worker`: worker entry points are
importable by name, everything crossing the process boundary is a plain
picklable dict, and telemetry comes home as exported documents.  Each
worker speaks over a private duplex pipe, which is what lets the
acceptor target individual workers — least-loaded dispatch, per-worker
metrics collection, and an explicit drain sentinel per worker.

Robustness:

* a worker that dies mid-request fails only its in-flight requests
  (``internal`` errors, counted in ``server.worker.crashes``) and is
  respawned (``fleet.worker.restarts``); the fleet keeps serving;
* admission control lives in the acceptor, so ``max_queue`` bounds the
  whole fleet and overload answers are immediate, never queued behind a
  busy worker;
* graceful drain answers everything admitted, then sends each worker a
  drain sentinel and joins it.

Request tracing does not cross the fleet boundary (the ``trace`` RPC
exports acceptor-side events only); use the single-process daemon for
cross-process span stitching.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry as tel
from .daemon import Server, ServerConfig, ServerThread
from .protocol import DEFAULT_MAX_STEPS, RpcError

#: How long ``FleetPool`` waits for a spawned worker's ready handshake.
WORKER_START_TIMEOUT_S = 60.0


@dataclass
class FleetConfig:
    """Worker-process knobs (the per-process :class:`~.service.Service`
    mirrors the single-process daemon's defaults)."""

    workers: int = 2
    cache_dir: Optional[str] = None
    trust_cache: bool = False
    cache_entries: Optional[int] = None
    cache_bytes: Optional[int] = None
    max_steps: int = DEFAULT_MAX_STEPS
    max_sessions: int = 32
    max_memo: int = 512
    #: Per-request function fan-out *inside* each worker: with ``jobs >
    #: 1`` every worker's service checks a request's functions on a
    #: thread pool sharing that worker's warm session, so one big
    #: program parallelizes even when it lands on a single worker.
    jobs: int = 1
    mode: Optional[str] = None
    #: ``spawn`` is the safe default (the acceptor runs threads and an
    #: event loop; forking those is asking for inherited-lock deadlocks).
    start_method: str = "spawn"

    def to_wire(self) -> Dict[str, Any]:
        return {
            "cache_dir": self.cache_dir,
            "trust_cache": self.trust_cache,
            "cache_entries": self.cache_entries,
            "cache_bytes": self.cache_bytes,
            "max_steps": self.max_steps,
            "max_sessions": self.max_sessions,
            "max_memo": self.max_memo,
            "jobs": self.jobs,
            "mode": self.mode,
        }


def fleet_worker_main(conn, ctl, config: Dict[str, Any]) -> None:
    """One worker process: a warm :class:`~.service.Service` answering
    requests from its data pipe until the drain sentinel (``None``) or
    EOF.

    Introspection rides a **separate control pipe** served by its own
    thread, so ``stats``/``metrics`` answer in milliseconds even while
    the data plane is deep in a long check — the daemon's
    control-plane-stays-responsive contract must survive the process
    boundary (``repro top`` polls it under load).

    Telemetry is enabled process-globally so checker/verifier/cache
    counters record; the acceptor pulls them over the control pipe and
    merges the exported documents for the ``metrics`` RPC.
    """
    from .service import Service

    sys.setrecursionlimit(100_000)  # match pipeline.worker.init_worker
    tel.enable()
    service = Service(
        cache_dir=config["cache_dir"],
        trust_cache=config["trust_cache"],
        max_sessions=config["max_sessions"],
        max_memo=config["max_memo"],
        max_steps=config["max_steps"],
        cache_entries=config["cache_entries"],
        cache_bytes=config["cache_bytes"],
        jobs=config.get("jobs", 1),
        mode=config.get("mode"),
    )
    threading.Thread(
        target=_control_loop, args=(ctl, service), daemon=True
    ).start()
    conn.send({"ready": True, "pid": os.getpid()})
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:  # drain sentinel
                break
            reply = _serve_one(service, msg)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        service.close()
        conn.close()


def _control_loop(ctl, service) -> None:
    """Worker-side control plane: introspection requests, answered
    concurrently with data-plane work (the registry and the service's
    stats are thread-safe)."""
    while True:
        try:
            msg = ctl.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        reply = {
            "id": msg["id"],
            "ok": True,
            "result": {
                "doc": tel.registry_to_doc(tel.registry()),
                "stats": service.stats(),
                "pid": os.getpid(),
            },
        }
        try:
            ctl.send(reply)
        except (BrokenPipeError, OSError):
            return


def _serve_one(service, msg: Dict[str, Any]) -> Dict[str, Any]:
    try:
        result = service.dispatch(msg["method"], msg["params"])
        return {"id": msg["id"], "ok": True, "result": result}
    except RpcError as exc:
        return {
            "id": msg["id"],
            "ok": False,
            "code": exc.code,
            "message": exc.message,
            "crash": False,
        }
    except Exception as exc:  # noqa: BLE001 — report, never kill the worker
        return {
            "id": msg["id"],
            "ok": False,
            "code": "internal",
            "message": f"{type(exc).__name__}: {exc}",
            "crash": True,
        }


class WorkerDied(Exception):
    """The worker process handling a request exited before answering."""


class _Worker:
    """One pre-forked process plus its parent-side plumbing."""

    def __init__(self, index: int, ctx, config: FleetConfig):
        self.index = index
        self.conn, child_data = ctx.Pipe(duplex=True)  # data plane
        self.ctl, child_ctl = ctx.Pipe(duplex=True)  # control plane
        self.proc = ctx.Process(
            target=fleet_worker_main,
            args=(child_data, child_ctl, config.to_wire()),
            name=f"repro-fleet-{index}",
            daemon=True,
        )
        self.proc.start()
        child_data.close()
        child_ctl.close()
        self.send_lock = threading.Lock()
        self.ctl_lock = threading.Lock()
        self.inflight = 0
        self.alive = False  # becomes True after the ready handshake
        self.pid: Optional[int] = None

    def await_ready(self, timeout: float = WORKER_START_TIMEOUT_S) -> None:
        if not self.conn.poll(timeout):
            self.proc.terminate()
            raise RuntimeError(
                f"fleet worker {self.index} did not become ready in {timeout}s"
            )
        hello = self.conn.recv()
        if not (isinstance(hello, dict) and hello.get("ready")):
            raise RuntimeError(f"fleet worker {self.index} bad handshake: {hello!r}")
        self.pid = hello["pid"]
        self.alive = True


class FleetPool:
    """N pre-forked workers with least-loaded dispatch, targeted
    introspection, death-respawn, and a drain protocol.

    Thread model: :meth:`submit` runs on the event loop; pipe sends run
    on a small executor (a pipe write can block on backpressure and must
    not stall the loop); one reader thread per worker resolves futures
    back onto the loop via ``call_soon_threadsafe``.
    """

    def __init__(self, config: FleetConfig):
        if config.workers < 1:
            raise ValueError("fleet needs at least one worker")
        self.config = config
        self._ctx = multiprocessing.get_context(config.start_method)
        self._ids = itertools.count(1)
        # msg id -> (future, worker, is_data); control traffic must not
        # count toward least-loaded dispatch.
        self._futures: Dict[int, Tuple[asyncio.Future, _Worker, bool]] = {}
        self._lock = threading.Lock()
        self._closing = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._registry: tel.Registry = tel.registry()
        self.restarts = 0
        # Spawn everyone first, then wait for handshakes: startup cost is
        # max(worker), not sum(worker).
        self.workers: List[_Worker] = [
            _Worker(i, self._ctx, config) for i in range(config.workers)
        ]
        for worker in self.workers:
            worker.await_ready()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind(self, loop: asyncio.AbstractEventLoop, registry: tel.Registry) -> None:
        """Attach to the acceptor's loop and registry; start readers."""
        self._loop = loop
        self._registry = registry
        registry.set_gauge("fleet.workers", len(self.workers))
        for worker in self.workers:
            self._start_reader(worker)

    def _start_reader(self, worker: _Worker) -> None:
        threading.Thread(
            target=self._read_loop,
            args=(worker, worker.conn, True),
            name=f"repro-fleet-reader-{worker.index}",
            daemon=True,
        ).start()
        threading.Thread(
            target=self._read_loop,
            args=(worker, worker.ctl, False),
            name=f"repro-fleet-ctl-{worker.index}",
            daemon=True,
        ).start()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def submit(
        self, method: str, params: Dict[str, Any]
    ) -> "asyncio.Future":
        """Queue one request on the least-loaded live worker.  Loop
        thread only.  The future resolves with the result payload or an
        exception (:class:`RpcError`, :class:`WorkerDied`)."""
        future = self._loop.create_future()
        worker = self._pick()
        if worker is None:
            future.set_exception(
                WorkerDied("no fleet workers alive (restarting)")
            )
            return future
        msg_id = next(self._ids)
        with self._lock:
            self._futures[msg_id] = (future, worker, True)
            worker.inflight += 1
        self._registry.inc("fleet.dispatched")
        self._send_async(worker, {"id": msg_id, "method": method, "params": params})
        return future

    def _pick(self) -> Optional[_Worker]:
        with self._lock:
            live = [w for w in self.workers if w.alive]
            if not live:
                return None
            return min(live, key=lambda w: w.inflight)

    def _send_async(
        self, worker: _Worker, msg: Dict[str, Any], control: bool = False
    ) -> None:
        conn = worker.ctl if control else worker.conn
        lock = worker.ctl_lock if control else worker.send_lock

        def _send() -> None:
            try:
                with lock:
                    conn.send(msg)
            except (OSError, ValueError):
                # The reader thread notices the death and fails the
                # future; nothing more to do here.
                pass

        self._loop.run_in_executor(None, _send)

    # ------------------------------------------------------------------
    # Introspection (metrics/stats fan-out — targeted, one per worker)
    # ------------------------------------------------------------------

    async def collect(self, timeout: float = 5.0) -> List[Dict[str, Any]]:
        """One introspection round trip per live worker — over the
        control pipes, answered by each worker's control thread, so the
        fan-out completes in milliseconds even when every data plane is
        busy.  Dead or wedged workers are skipped after ``timeout``."""
        futures = []
        for worker in list(self.workers):
            if not worker.alive:
                continue
            future = self._loop.create_future()
            msg_id = next(self._ids)
            with self._lock:
                self._futures[msg_id] = (future, worker, False)
            self._send_async(worker, {"id": msg_id}, control=True)
            futures.append(future)
        if not futures:
            return []
        done, pending = await asyncio.wait(futures, timeout=timeout)
        for future in pending:
            future.cancel()
        results = []
        for future in done:
            if future.cancelled() or future.exception() is not None:
                continue
            results.append(future.result())
        return results

    # ------------------------------------------------------------------
    # Reader threads, death, respawn
    # ------------------------------------------------------------------

    def _read_loop(self, worker: _Worker, conn, is_data: bool) -> None:
        while True:
            try:
                reply = conn.recv()
            except (EOFError, OSError):
                break
            future = self._take(reply.get("id"))
            if future is None:
                continue
            if reply.get("ok"):
                self._resolve(future, reply.get("result"), None)
            elif reply.get("crash"):
                self._resolve(
                    future, None, RuntimeError(reply.get("message", "worker crash"))
                )
            else:
                self._resolve(
                    future,
                    None,
                    RpcError(reply.get("code", "internal"), reply.get("message", "?")),
                )
        if is_data:
            # Only the data pipe's EOF drives death handling; the
            # control pipe closes in tandem and its pending futures are
            # failed by the same _on_death.
            self._on_death(worker)

    def _take(self, msg_id) -> Optional[asyncio.Future]:
        with self._lock:
            entry = self._futures.pop(msg_id, None)
            if entry is None:
                return None
            future, worker, is_data = entry
            if is_data:
                worker.inflight -= 1
            return future

    def _resolve(self, future: asyncio.Future, result, exc) -> None:
        def _set() -> None:
            if future.cancelled():
                return
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(result)

        try:
            self._loop.call_soon_threadsafe(_set)
        except RuntimeError:
            pass  # loop already closed during shutdown

    def _on_death(self, worker: _Worker) -> None:
        worker.alive = False
        orphaned: List[asyncio.Future] = []
        with self._lock:
            for msg_id in [
                mid for mid, (_, w, _d) in self._futures.items() if w is worker
            ]:
                future, _, is_data = self._futures.pop(msg_id)
                if is_data:
                    worker.inflight -= 1
                orphaned.append(future)
        for future in orphaned:
            self._resolve(
                future,
                None,
                WorkerDied(
                    f"fleet worker {worker.index} (pid {worker.pid}) died mid-request"
                ),
            )
        if self._closing:
            return
        try:
            replacement = _Worker(worker.index, self._ctx, self.config)
            replacement.await_ready()
        except Exception:
            self._registry.inc("fleet.worker.respawn_failures")
            return
        with self._lock:
            self.workers[self.workers.index(worker)] = replacement
        self.restarts += 1
        self._registry.inc("fleet.worker.restarts")
        self._start_reader(replacement)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> None:
        """Send every worker the drain sentinel and join it.  Blocking —
        run off-loop (the fleet server calls it via an executor)."""
        self._closing = True
        for worker in self.workers:
            if not worker.alive:
                continue
            try:
                with worker.send_lock:
                    worker.conn.send(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for worker in self.workers:
            worker.proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=5.0)
            for conn in (worker.conn, worker.ctl):
                try:
                    conn.close()
                except OSError:
                    pass

    def describe(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "workers": len(self.workers),
                "alive": sum(1 for w in self.workers if w.alive),
                "restarts": self.restarts,
                "pids": [w.pid for w in self.workers],
                "inflight": [w.inflight for w in self.workers],
            }


class FleetServer(Server):
    """The acceptor: base-class sockets/framing/admission/drain, with
    execution fanned out to a :class:`FleetPool` instead of threads."""

    def __init__(
        self,
        fleet_config: Optional[FleetConfig] = None,
        config: Optional[ServerConfig] = None,
        service=None,
    ):
        super().__init__(service=service, config=config)
        self.fleet_config = fleet_config if fleet_config is not None else FleetConfig()
        self.fleet: Optional[FleetPool] = None

    async def start(self) -> None:
        # Fork the fleet before opening sockets: a worker that fails to
        # start must fail `repro serve`, not strand accepted clients.
        if self.fleet is None:
            loop = asyncio.get_running_loop()
            self.fleet = await loop.run_in_executor(
                None, FleetPool, self.fleet_config
            )
        await super().start()
        self.fleet.bind(self._loop, self.registry)

    def _submit(self, method, params, trace):
        # `trace` is intentionally dropped: spans do not cross the fleet
        # boundary (module docstring).
        return self.fleet.submit(method, params)

    async def stats_doc(self) -> Dict[str, Any]:
        collected = await self.fleet.collect()
        stats = self._stats()  # after the await: inflight must be fresh
        service = {
            "sessions": 0,
            "memo_entries": 0,
            "memo_hits": 0,
            "memo_misses": 0,
            "cache_dir": self.fleet_config.cache_dir,
            "max_steps": self.fleet_config.max_steps,
        }
        for item in collected:
            worker_stats = item.get("stats", {})
            for key in ("sessions", "memo_entries", "memo_hits", "memo_misses"):
                service[key] += int(worker_stats.get(key, 0))
        stats["service"] = service
        stats["fleet"] = self.fleet.describe()
        return stats

    async def metrics_doc(self) -> Dict[str, Any]:
        # Copy the acceptor registry (doc -> registry round trip), then
        # fold in every worker's export: counters add, gauges take the
        # max envelope, histogram buckets add — same merge the pipeline
        # uses, so `repro top` reads fleet-wide checker/cache metrics.
        merged = tel.doc_to_registry(tel.registry_to_doc(self.registry))
        for item in await self.fleet.collect():
            doc = item.get("doc")
            if doc is not None:
                tel.merge_doc(merged, doc)
        return tel.registry_to_doc(merged)

    async def _shutdown(self) -> None:
        await super()._shutdown()
        if self.fleet is not None:
            await self._loop.run_in_executor(None, self.fleet.shutdown)


class FleetThread(ServerThread):
    """A :class:`FleetServer` on a background thread — what the load
    harness and the fleet tests drive."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        fleet_config: Optional[FleetConfig] = None,
    ):
        super().__init__(config=config)
        self.fleet_config = fleet_config

    def _make_server(self) -> Server:
        return FleetServer(
            fleet_config=self.fleet_config, config=self.config
        )


__all__ = [
    "FleetConfig",
    "FleetPool",
    "FleetServer",
    "FleetThread",
    "WorkerDied",
    "fleet_worker_main",
]
