"""The asyncio JSON-lines daemon behind ``repro serve``.

One :class:`Server` listens on TCP and/or a Unix domain socket, reads
``repro-rpc/1`` frames line by line, and dispatches them to a
:class:`~.service.Service` on a thread pool.  Robustness properties (all
tested in ``tests/test_server.py``):

* **bounded in-flight queue** — at most ``max_queue`` requests execute at
  once; excess requests get an explicit ``overloaded`` error immediately
  instead of queueing unboundedly (clients retry with backoff);
* **per-request timeouts** — a request that exceeds ``timeout_s`` gets a
  ``timeout`` error; the worker keeps running to completion (``run``
  requests are additionally bounded by the service's step budget) but its
  slot is only released when it actually finishes, so the queue bound is
  honest;
* **request-size limits + malformed-frame recovery** — an oversize or
  non-JSON line produces one error response and the connection keeps
  working; bytes of an oversize frame are discarded, never buffered;
* **graceful drain** — SIGTERM/SIGINT (or a ``shutdown`` request) stops
  accepting work, answers everything in flight, then exits 0.

All ``server.*`` telemetry lands in the service's registry (the enabled
process-global one under ``repro serve``, a private always-enabled one
in embedded ``ServerThread`` uses) — the registry is thread-safe, so the
event loop and the worker threads record into the same place and the
``stats``/``metrics`` RPCs read real metrics, not a shadow dict.
Request latency is recorded for **every** dispatch-path outcome —
``ok``, ``timeout``, ``overloaded``, ``shutting-down``, ``internal`` —
so tail latency under overload is honest, not survivor-biased.

When tracing is enabled (``repro serve --trace-buffer``), each request
frame's optional ``trace`` context becomes the parent of a
``server.<method>`` span opened on the worker thread, under which the
service/session/checker/verifier spans nest via the registry→tracer
bridge; the ``trace`` RPC exports the ring buffer for client-side
stitching (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .. import telemetry as tel
from .protocol import (
    DEFAULT_MAX_QUEUE,
    DEFAULT_TIMEOUT_S,
    E_INTERNAL,
    E_OVERLOADED,
    E_SHUTTING_DOWN,
    E_TIMEOUT,
    E_TOO_LARGE,
    MAX_FRAME_BYTES,
    RpcError,
    encode_error,
    encode_response,
    parse_request,
    recovered_id,
)
from .service import Service


@dataclass
class ServerConfig:
    """Listening and robustness knobs for one :class:`Server`."""

    host: Optional[str] = "127.0.0.1"  # None disables TCP
    port: int = 0  # 0 = ephemeral
    unix_path: Optional[str] = None
    max_queue: int = DEFAULT_MAX_QUEUE
    timeout_s: float = DEFAULT_TIMEOUT_S
    max_frame: int = MAX_FRAME_BYTES
    workers: int = 8
    drain_grace_s: float = 10.0
    http_host: Optional[str] = None  # None disables the HTTP gateway
    http_port: int = 0  # 0 = ephemeral


class Server:
    """One long-running check/verify/run service."""

    def __init__(
        self,
        service: Optional[Service] = None,
        config: Optional[ServerConfig] = None,
    ):
        self.service = service if service is not None else Service()
        self.config = config if config is not None else ServerConfig()
        if self.config.host is None and self.config.unix_path is None:
            raise ValueError("server needs a TCP host or a unix socket path")
        self.tcp_address: Optional[Tuple[str, int]] = None
        self.unix_path: Optional[str] = None
        self.http_address: Optional[Tuple[str, int]] = None
        # Shared with the Service: the process-global registry under
        # `repro serve`, a private always-enabled one otherwise.  The
        # registry is thread-safe, so no shadow dict is needed for stats.
        self.registry = self.service.registry
        self._started_at = time.monotonic()
        self._inflight = 0
        self._draining = False
        self._drain_event: Optional[asyncio.Event] = None
        self._pending: set = set()
        self._servers: list = []
        self._conns: set = set()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._drain_event = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-rpc"
        )
        if self.config.host is not None:
            server = await asyncio.start_server(
                self._client_loop, self.config.host, self.config.port
            )
            self.tcp_address = server.sockets[0].getsockname()[:2]
            self._servers.append(server)
        if self.config.unix_path is not None:
            path = self.config.unix_path
            if os.path.exists(path):
                os.unlink(path)  # stale socket from a previous run
            server = await asyncio.start_unix_server(self._client_loop, path)
            self.unix_path = path
            self._servers.append(server)
        if self.config.http_host is not None:
            from .gateway import GatewayConfig, HttpGateway

            gateway = HttpGateway(
                self,
                GatewayConfig(
                    host=self.config.http_host, port=self.config.http_port
                ),
            )
            self._servers.append(await gateway.start())
            self.http_address = gateway.address

    def request_drain(self) -> None:
        """Begin a graceful shutdown; safe to call from signal handlers
        and (via ``call_soon_threadsafe``) from other threads."""
        if self._drain_event is not None:
            self._drain_event.set()

    async def serve_forever(self, install_signals: bool = True) -> None:
        """Start (if needed), serve until drain is requested, drain, exit."""
        if self._loop is None:
            await self.start()
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self.request_drain)
        await self._drain_event.wait()
        await self._shutdown()

    async def _shutdown(self) -> None:
        self._draining = True
        self._count("server.drain.inflight", self._inflight)
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        if self._pending:
            # Answer everything already admitted; the grace period only
            # matters for a worker stuck past its own timeout.
            await asyncio.wait(
                list(self._pending), timeout=self.config.drain_grace_s
            )
        # Give connection tasks one tick to flush final responses.
        await asyncio.sleep(0)
        for writer in list(self._conns):
            writer.close()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self.service.close()
        if self.unix_path and os.path.exists(self.unix_path):
            os.unlink(self.unix_path)

    # ------------------------------------------------------------------
    # Connections and framing
    # ------------------------------------------------------------------

    async def _client_loop(self, reader, writer) -> None:
        self._conns.add(writer)
        self._count("server.connections.opened")
        buf = bytearray()
        dropping = False
        try:
            while True:
                newline = buf.find(b"\n")
                if newline < 0:
                    if not dropping and len(buf) > self.config.max_frame:
                        # Oversize frame: stop buffering, remember to
                        # answer once its newline finally shows up.
                        dropping = True
                        buf.clear()
                    if dropping:
                        buf.clear()
                    chunk = await reader.read(65536)
                    if not chunk:
                        break
                    buf += chunk
                    continue
                line = bytes(buf[:newline])
                del buf[: newline + 1]
                if dropping:
                    dropping = False
                    self._count("server.frames.oversize")
                    response = encode_error(
                        None,
                        E_TOO_LARGE,
                        f"frame exceeds {self.config.max_frame} bytes",
                    )
                elif len(line) > self.config.max_frame:
                    self._count("server.frames.oversize")
                    response = encode_error(
                        None,
                        E_TOO_LARGE,
                        f"frame exceeds {self.config.max_frame} bytes",
                    )
                elif not line.strip():
                    continue  # blank keep-alive line
                else:
                    response = await self._handle_frame(line)
                writer.write(response)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self._conns.discard(writer)
            self._count("server.connections.closed")
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # One request
    # ------------------------------------------------------------------

    async def _handle_frame(self, line: bytes) -> bytes:
        try:
            request_id, method, params, trace = parse_request(line)
        except RpcError as exc:
            self._count(f"server.requests.unknown.{exc.code}")
            return encode_error(recovered_id(exc), exc.code, exc.message)

        # Control-plane methods answer inline on the loop thread: ping
        # stays responsive under load (it is the readiness probe), stats/
        # metrics/trace read resident state, shutdown must not need a
        # queue slot.
        if method == "ping":
            self._count("server.requests.ping.ok")
            return encode_response(request_id, self.service.ping())
        if method == "stats":
            self._count("server.requests.stats.ok")
            return encode_response(request_id, await self.stats_doc())
        if method == "metrics":
            self._count("server.requests.metrics.ok")
            return encode_response(request_id, await self.metrics_doc())
        if method == "trace":
            self._count("server.requests.trace.ok")
            tr = tel.tracer()
            return encode_response(
                request_id,
                {
                    "schema": tel.TRACE_SCHEMA,
                    "enabled": tr.enabled,
                    "events": tr.events(),
                    "dropped": tr.dropped,
                },
            )
        if method == "shutdown":
            self._count("server.requests.shutdown.ok")
            response = encode_response(request_id, {"draining": True})
            self.request_drain()
            return response

        code, payload = await self.handle_request(method, params, trace)
        if code is None:
            return encode_response(request_id, payload)
        return encode_error(request_id, code, payload)

    async def handle_request(
        self,
        method: str,
        params: Dict[str, Any],
        trace: Optional[Dict[str, Any]],
    ) -> Tuple[Optional[str], Any]:
        """Admission control + dispatch for one data-plane request —
        shared by the ``repro-rpc/1`` framing and the HTTP gateway, so
        both fronts get identical overload/timeout/drain semantics.

        Returns ``(None, result)`` on success or ``(code, message)``
        for a protocol-level failure.  Latency is clocked from
        admission, so refused requests record too — ``server.latency_ms``
        must not be survivor-biased.
        """
        t0 = time.perf_counter()
        if self._draining:
            return self._refuse(
                method, E_SHUTTING_DOWN, "server is draining", t0
            )
        if self._inflight >= self.config.max_queue:
            return self._refuse(
                method,
                E_OVERLOADED,
                f"{self._inflight} requests in flight (limit "
                f"{self.config.max_queue}); retry with backoff",
                t0,
            )

        self._inflight += 1
        self._gauge("server.queue_depth", self._inflight)
        self._observe("server.queue_depth.sampled", self._inflight)
        future = self._submit(method, params, trace)
        self._pending.add(future)
        future.add_done_callback(self._request_done)

        try:
            result = await asyncio.wait_for(
                asyncio.shield(future), self.config.timeout_s
            )
        except asyncio.TimeoutError:
            return self._refuse(
                method,
                E_TIMEOUT,
                f"request exceeded {self.config.timeout_s}s",
                t0,
            )
        except RpcError as exc:
            return self._refuse(method, exc.code, exc.message, t0)
        except Exception as exc:  # worker crash: report, keep serving
            return self._refuse(
                method,
                E_INTERNAL,
                f"{type(exc).__name__}: {exc}",
                t0,
            )
        self._count(f"server.requests.{method}.ok")
        self._latency(method, t0)
        return None, result

    def _submit(
        self,
        method: str,
        params: Dict[str, Any],
        trace: Optional[Dict[str, Any]],
    ):
        """Hand one admitted request to the execution backend and return
        an awaitable future.  The base server runs the resident Service
        on a thread pool; :class:`~.fleet.FleetServer` overrides this to
        fan out to a pre-forked worker process instead."""
        return self._loop.run_in_executor(
            self._pool, self._dispatch_traced, method, params, trace
        )

    def _refuse(
        self, method: str, code: str, message: str, t0: float
    ) -> Tuple[str, str]:
        """Count + clock a failed/refused request.  Refusals record
        latency like successes do."""
        self._count(f"server.requests.{method}.{code}")
        self._latency(method, t0)
        return code, message

    def _latency(self, method: str, t0: float) -> None:
        latency_ms = (time.perf_counter() - t0) * 1000.0
        self._observe("server.latency_ms", latency_ms)
        self._observe(f"server.latency_ms.{method}", latency_ms)

    def _dispatch_traced(
        self,
        method: str,
        params: Dict[str, Any],
        trace: Optional[Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Runs on a worker thread.  Opens the per-request
        ``server.<method>`` span — a child of the client's span when the
        frame carried trace context, a new root otherwise — so the
        service/session/checker spans beneath it stitch into one tree
        across the RPC boundary.  ``run_in_executor`` does not propagate
        contextvars, hence the explicit parent hand-off."""
        tr = tel.tracer()
        if not tr.enabled:
            return self.service.dispatch(method, params)
        parent = tel.TraceContext.from_wire(trace)
        with tr.span(f"server.{method}", cat="server", parent=parent):
            return self.service.dispatch(method, params)

    def _request_done(self, future) -> None:
        self._pending.discard(future)
        self._inflight -= 1
        self._gauge("server.queue_depth", self._inflight)
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None and not isinstance(exc, RpcError):
            self._count("server.worker.crashes")

    # ------------------------------------------------------------------
    # Bookkeeping (the registry is thread-safe; loop + workers share it)
    # ------------------------------------------------------------------

    async def stats_doc(self) -> Dict[str, Any]:
        """The ``stats`` RPC payload.  Async so the fleet server can
        gather per-worker state without blocking the loop."""
        return self._stats()

    async def metrics_doc(self) -> Dict[str, Any]:
        """The ``metrics`` RPC payload — the acceptor's registry alone
        here; the fleet server overrides this to merge worker exports."""
        return tel.registry_to_doc(self.registry)

    def _stats(self) -> Dict[str, Any]:
        requests = {
            name: counter.value
            for name, counter in sorted(self.registry.counters.items())
            if name.startswith("server.")
        }
        return {
            "uptime_ms": round((time.monotonic() - self._started_at) * 1000.0, 3),
            "inflight": self._inflight,
            "draining": self._draining,
            "requests": requests,
            "service": self.service.stats(),
        }

    def _count(self, name: str, n: int = 1) -> None:
        self.registry.inc(name, n)

    def _gauge(self, name: str, value: int) -> None:
        self.registry.set_gauge(name, value)

    def _observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)


class ServerThread:
    """A :class:`Server` on a background thread — the harness tests and
    ``repro bench`` use this to measure warm-path latency in-process.

    ::

        with ServerThread() as handle:
            client = Client(handle.address)
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        service: Optional[Service] = None,
    ):
        self.config = config if config is not None else ServerConfig()
        self.service = service
        self.server: Optional[Server] = None
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("server thread did not become ready")
        if self._error is not None:
            raise RuntimeError(f"server thread failed: {self._error}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures to start()
            self._error = exc
            self._ready.set()

    def _make_server(self) -> Server:
        """Subclass hook — ``FleetThread`` builds a ``FleetServer``."""
        return Server(service=self.service, config=self.config)

    async def _main(self) -> None:
        self.server = self._make_server()
        await self.server.start()
        self._ready.set()
        # No signal handlers: the thread is stopped via request_drain.
        await self.server._drain_event.wait()
        await self.server._shutdown()

    @property
    def address(self):
        """``(host, port)`` for TCP, or the unix socket path string."""
        if self.server is None:
            raise RuntimeError("server not started")
        if self.server.tcp_address is not None:
            return self.server.tcp_address
        return self.server.unix_path

    def stop(self, timeout: float = 30.0) -> None:
        if self.server is not None and self.server._loop is not None:
            try:
                self.server._loop.call_soon_threadsafe(self.server.request_drain)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
