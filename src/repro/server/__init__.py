"""``repro serve`` — a long-running check/verify/run service.

The daemon (:mod:`.daemon`) speaks the ``repro-rpc/1`` JSON-lines
protocol (:mod:`.protocol`) over TCP and/or a Unix domain socket and
dispatches to a warm-state :class:`~.service.Service`.  See docs/API.md
for the wire schema and README for the quickstart.
"""

from .daemon import Server, ServerConfig, ServerThread
from .fleet import FleetConfig, FleetServer, FleetThread
from .gateway import GatewayConfig, HttpGateway
from .protocol import (
    DEFAULT_MAX_QUEUE,
    DEFAULT_MAX_STEPS,
    DEFAULT_TIMEOUT_S,
    MAX_FRAME_BYTES,
    METHODS,
    RPC_SCHEMA,
    RpcError,
)
from .service import Service

__all__ = [
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_MAX_STEPS",
    "DEFAULT_TIMEOUT_S",
    "MAX_FRAME_BYTES",
    "METHODS",
    "RPC_SCHEMA",
    "RpcError",
    "FleetConfig",
    "FleetServer",
    "FleetThread",
    "GatewayConfig",
    "HttpGateway",
    "Server",
    "ServerConfig",
    "ServerThread",
    "Service",
]
