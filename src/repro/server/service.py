"""The warm-state method dispatcher behind ``repro serve``.

A :class:`Service` is transport-agnostic and synchronous — the asyncio
daemon calls it from worker threads; tests call it directly.  It owns the
state that makes a long-running process worth having:

* **a ProgramSession LRU** — parse + function-type elaboration happen once
  per distinct source, then every ``check``/``verify``/``run`` against
  that source reuses the shared session (interned regions included);
* **a result memo** — ``check``/``verify`` responses are memoized by
  ``(method, filename, sha256(source))``, so the warm path is a dict
  lookup returning the exact dict a cold call produced (byte-identity
  with :mod:`repro.api` is structural, not approximate);
* **the PR-4 certificate cache** — with ``cache_dir`` set, ``verify`` and
  ``batch`` route through a resident :class:`~repro.pipeline.Pipeline`
  so unchanged functions replay stored certificates instead of re-proving;
* **in-process parallel checking** — with ``jobs > 1`` the resident
  pipeline fans each request's functions out over threads sharing the
  warm session (the persistent checker core makes that safe with zero
  copies), so one large ``verify`` request uses every configured core
  without forking or pickling.

Results are plain dicts: exactly ``repro.api.*Result.to_dict()``.
Protocol-style validation failures raise :class:`~.protocol.RpcError`
with code ``invalid-request``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from .. import api
from .. import telemetry as tel
from .protocol import DEFAULT_MAX_STEPS, E_INVALID, RPC_SCHEMA, RpcError


def _need(params: Dict[str, Any], key: str, kind, what: str):
    value = params.get(key)
    if not isinstance(value, kind):
        raise RpcError(E_INVALID, f"params.{key} must be {what}")
    return value


def _opt_str(params: Dict[str, Any], key: str, default: str) -> str:
    value = params.get(key, default)
    if not isinstance(value, str):
        raise RpcError(E_INVALID, f"params.{key} must be a string")
    return value


class Service:
    """Check/verify/run/batch against resident warm state."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        trust_cache: bool = False,
        max_sessions: int = 32,
        max_memo: int = 512,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_batch: int = 256,
        cache_entries: Optional[int] = None,
        cache_bytes: Optional[int] = None,
        jobs: int = 1,
        mode: Optional[str] = None,
    ):
        self.cache_dir = cache_dir
        self.jobs = jobs if jobs and jobs > 0 else 1
        self.mode = mode
        self.max_steps = max_steps
        self.max_batch = max_batch
        self._max_sessions = max_sessions
        self._max_memo = max_memo
        # sha256(source) -> (ProgramSession, per-session lock)
        self._sessions: "OrderedDict[str, Tuple[Any, threading.Lock]]" = (
            OrderedDict()
        )
        # (method, filename, sha256(source)) -> result dict
        self._memo: "OrderedDict[Tuple[str, str, str], Dict[str, Any]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        # The service's metrics home.  When the process-global registry
        # is enabled (repro serve does this at startup) it IS that
        # registry, so exports see service metrics; otherwise a private
        # always-enabled one, so the `stats`/`metrics` RPCs stay truthful
        # even in embedded ServerThread uses with telemetry off.  The
        # registry is thread-safe now, so this replaced the plain-dict
        # request/memo counter shadows that existed because it wasn't.
        ambient = tel.registry()
        self.registry = ambient if ambient.enabled else tel.Registry(enabled=True)
        self._pipeline = None
        self._pipeline_lock = threading.Lock()
        if cache_dir is not None or self.jobs > 1 or mode not in (None, "serial"):
            from ..pipeline import Pipeline

            self._pipeline = Pipeline(
                jobs=self.jobs,
                cache_dir=cache_dir,
                trust_cache=trust_cache,
                cache_entries=cache_entries,
                cache_bytes=cache_bytes,
                mode=mode,
            )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(self, method: str, params: Dict[str, Any]) -> Dict[str, Any]:
        if method == "ping":
            return self.ping()
        if method == "check":
            return self.check(
                _need(params, "source", str, "a string"),
                _opt_str(params, "filename", "<rpc>"),
            )
        if method == "verify":
            return self.verify(
                _need(params, "source", str, "a string"),
                _opt_str(params, "filename", "<rpc>"),
            )
        if method == "run":
            return self.run(params)
        if method == "batch":
            return self.batch(params)
        if method == "stats":
            return {"service": self.stats()}
        raise RpcError(E_INVALID, f"method {method!r} not handled in-process")

    # ------------------------------------------------------------------
    # Methods
    # ------------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        from .. import __version__

        return {"pong": True, "rpc": RPC_SCHEMA, "version": __version__}

    def check(self, source: str, filename: str) -> Dict[str, Any]:
        key = ("check", filename, _sha(source))
        hit = self._memo_get(key)
        if hit is not None:
            return hit
        session, lock = self._session(source)
        if lock is not None:
            with lock:
                result = api.check(source, filename=filename, session=session)
        else:
            result = api.check(source, filename=filename)
        return self._memo_put(key, result.to_dict())

    def verify(self, source: str, filename: str) -> Dict[str, Any]:
        key = ("verify", filename, _sha(source))
        hit = self._memo_get(key)
        if hit is not None:
            return hit
        if self._pipeline is not None:
            with self._pipeline_lock:
                program_result = self._pipeline.run(filename, source)
            result = _verify_from_program_result(program_result, filename)
        else:
            session, lock = self._session(source)
            if lock is not None:
                with lock:
                    result = api.verify(
                        source, filename=filename, session=session
                    )
            else:
                result = api.verify(source, filename=filename)
        return self._memo_put(key, result.to_dict())

    def run(self, params: Dict[str, Any]) -> Dict[str, Any]:
        source = _need(params, "source", str, "a string")
        function = _need(params, "function", str, "a string")
        filename = _opt_str(params, "filename", "<rpc>")
        args = params.get("args", [])
        if not isinstance(args, list) or not all(
            isinstance(a, (int, bool)) for a in args
        ):
            raise RpcError(E_INVALID, "params.args must be a list of ints/bools")
        erased = bool(params.get("erased", False))
        # Warm serving defaults to the compiled bytecode engine: the
        # session LRU plus the shared compile cache make repeat runs hit
        # precompiled modules, and RunResult.engine reports what ran so
        # clients always see the effective choice.  Explicit "tree" still
        # selects the reference interpreter.
        engine = params.get("engine")
        if engine is None:
            engine = "ir"
        if engine not in ("tree", "ir"):
            raise RpcError(
                E_INVALID, "params.engine must be 'tree' or 'ir'"
            )
        budget = params.get("max_steps")
        if budget is not None and (not isinstance(budget, int) or budget <= 0):
            raise RpcError(E_INVALID, "params.max_steps must be a positive int")
        # The server-side budget is a ceiling, not a default override.
        max_steps = min(budget, self.max_steps) if budget else self.max_steps
        session, lock = self._session(source)
        if lock is not None:
            with lock:
                result = api.run(
                    source,
                    function,
                    args,
                    filename=filename,
                    erased=erased,
                    max_steps=max_steps,
                    engine=engine,
                    session=session,
                )
        else:
            result = api.run(
                source,
                function,
                args,
                filename=filename,
                erased=erased,
                max_steps=max_steps,
                engine=engine,
            )
        return result.to_dict()

    def batch(self, params: Dict[str, Any]) -> Dict[str, Any]:
        programs = _need(params, "programs", list, "a list")
        if len(programs) > self.max_batch:
            raise RpcError(
                E_INVALID,
                f"batch of {len(programs)} exceeds the limit of {self.max_batch}",
            )
        entries: List[Dict[str, Any]] = []
        ok = True
        for index, item in enumerate(programs):
            if not isinstance(item, dict) or not isinstance(
                item.get("source"), str
            ):
                raise RpcError(
                    E_INVALID,
                    f"params.programs[{index}] must be "
                    '{"label": str, "source": str}',
                )
            label = item.get("label")
            if not isinstance(label, str):
                label = f"program-{index}"
            result = self.verify(item["source"], label)
            ok = ok and result["ok"]
            entries.append({"label": label, "result": result})
        return {"ok": ok, "programs": entries}

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "memo_entries": len(self._memo),
                "memo_hits": self.registry.value("server.memo.hits"),
                "memo_misses": self.registry.value("server.memo.misses"),
                "cache_dir": self.cache_dir,
                "max_steps": self.max_steps,
                "jobs": self.jobs,
                "mode": (
                    None if self._pipeline is None else self._pipeline.mode
                ),
            }

    def close(self) -> None:
        if self._pipeline is not None:
            self._pipeline.close()

    # ------------------------------------------------------------------
    # Warm state
    # ------------------------------------------------------------------

    def _session(self, source: str):
        """(session, lock) — or (None, None) when the program does not
        even construct a session (parse/elaboration failure); the facade
        then recomputes and reports the diagnostic itself."""
        from ..pipeline.session import ProgramSession

        key = _sha(source)
        with self._lock:
            entry = self._sessions.get(key)
            if entry is not None:
                self._sessions.move_to_end(key)
                return entry
        try:
            session = ProgramSession(source)
        except Exception:
            return None, None
        entry = (session, threading.Lock())
        with self._lock:
            # A racing thread may have built it first; keep the winner so
            # both callers share one session (and one session lock).
            existing = self._sessions.get(key)
            if existing is not None:
                return existing
            while len(self._sessions) >= self._max_sessions:
                self._sessions.popitem(last=False)
            self._sessions[key] = entry
        return entry

    def _memo_get(self, key) -> Optional[Dict[str, Any]]:
        with self._lock:
            hit = self._memo.get(key)
            if hit is not None:
                self._memo.move_to_end(key)
                self.registry.inc("server.memo.hits")
                return hit
            self.registry.inc("server.memo.misses")
        return None

    def _memo_put(self, key, result: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            while len(self._memo) >= self._max_memo:
                self._memo.popitem(last=False)
            self._memo[key] = result
        return result


def _verify_from_program_result(program_result, filename: str):
    """Convert a pipeline :class:`ProgramResult` into the facade's
    :class:`~repro.api.VerifyResult` (same numbers as the serial path —
    the PR-4 determinism contract)."""
    if program_result.ok:
        return api.VerifyResult(
            ok=True,
            functions=len(program_result.functions),
            nodes=program_result.nodes,
            verified=program_result.verified,
        )
    return api.VerifyResult(
        ok=False,
        diagnostics=[program_result.error.to_diagnostic(filename)],
    )


def _sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()
