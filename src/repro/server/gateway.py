"""A minimal HTTP/JSON front door for the serve daemon.

``POST /v1/check``, ``/v1/verify``, and ``/v1/run`` take the same params
object the ``repro-rpc/1`` frames carry and return the same result dict
as JSON — the gateway is a thin translation layer over
:meth:`~.daemon.Server.handle_request`, so HTTP clients get **identical**
admission semantics to socket clients: the same bounded queue, the same
per-request timeout, the same drain behavior.  One shared budget, two
wire formats.  Defaults match too: a ``/v1/run`` body without an
``engine`` key gets the server-side default (the compiled bytecode
engine) and the response's ``engine`` field reports what actually ran.

Error codes map onto HTTP statuses clients already know how to retry:

=================  ======  =========================================
``repro-rpc/1``    status  note
=================  ======  =========================================
invalid-request    400     bad params / body not a JSON object
unknown-method     404     no such route
too-large          413     body over the frame limit
timeout            504     request exceeded ``timeout_s``
overloaded         503     carries ``Retry-After: 1``
shutting-down      503     server is draining
internal           500     worker crash (server keeps serving)
=================  ======  =========================================

``GET /v1/ping|stats|metrics`` expose the control plane for dashboards.
The parser is deliberately small: one request per connection
(``Connection: close``), ``Content-Length`` bodies only.  Anything
fancier belongs in a real reverse proxy in front.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .protocol import (
    E_INVALID,
    E_OVERLOADED,
    E_SHUTTING_DOWN,
    E_TIMEOUT,
    E_TOO_LARGE,
    E_UNKNOWN_METHOD,
    METHODS,
)

#: repro-rpc/1 error code -> HTTP status.
STATUS_FOR_CODE: Dict[str, int] = {
    E_INVALID: 400,
    E_UNKNOWN_METHOD: 404,
    E_TOO_LARGE: 413,
    E_TIMEOUT: 504,
    E_OVERLOADED: 503,
    E_SHUTTING_DOWN: 503,
}

#: Data-plane methods reachable as POST /v1/<method>.
POST_METHODS = ("check", "verify", "run", "batch")
GET_METHODS = ("ping", "stats", "metrics")

MAX_HEADER_BYTES = 16 * 1024


@dataclass
class GatewayConfig:
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral


class HttpGateway:
    """One HTTP listener translating onto an existing :class:`Server`."""

    def __init__(self, server, config: Optional[GatewayConfig] = None):
        self.server = server
        self.config = config if config is not None else GatewayConfig()
        self.address: Optional[Tuple[str, int]] = None
        self._listener = None

    async def start(self):
        """Open the listener and return the underlying asyncio server
        (the daemon folds it into its own shutdown list)."""
        self._listener = await asyncio.start_server(
            self._client_loop, self.config.host, self.config.port
        )
        self.address = self._listener.sockets[0].getsockname()[:2]
        return self._listener

    # ------------------------------------------------------------------
    # One connection = one request
    # ------------------------------------------------------------------

    async def _client_loop(self, reader, writer) -> None:
        self.server._count("gateway.connections")
        try:
            status, body = await self._serve_one(reader)
            writer.write(_response(status, body))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_one(self, reader) -> Tuple[int, Dict[str, Any]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, _err(E_INVALID, "malformed HTTP request")
        if len(head) > MAX_HEADER_BYTES:
            return 431, _err(E_TOO_LARGE, "request headers too large")
        try:
            verb, path, headers = _parse_head(head)
        except ValueError as exc:
            return 400, _err(E_INVALID, str(exc))

        if verb == "GET":
            return await self._control(path)
        if verb != "POST":
            return 405, _err(E_INVALID, f"method {verb} not allowed")

        method = _route(path, POST_METHODS)
        if method is None:
            return 404, _err(E_UNKNOWN_METHOD, f"no route {path}")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return 400, _err(E_INVALID, "bad Content-Length")
        if length > self.server.config.max_frame:
            return 413, _err(
                E_TOO_LARGE,
                f"body exceeds {self.server.config.max_frame} bytes",
            )
        body = await reader.readexactly(length) if length else b""
        try:
            params = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            return 400, _err(E_INVALID, "body must be a JSON object")
        if not isinstance(params, dict):
            return 400, _err(E_INVALID, "body must be a JSON object")

        self.server._count(f"gateway.requests.{method}")
        code, payload = await self.server.handle_request(method, params, None)
        if code is None:
            return 200, payload
        return STATUS_FOR_CODE.get(code, 500), _err(code, payload)

    async def _control(self, path: str) -> Tuple[int, Dict[str, Any]]:
        method = _route(path, GET_METHODS)
        if method == "ping":
            return 200, self.server.service.ping()
        if method == "stats":
            return 200, await self.server.stats_doc()
        if method == "metrics":
            return 200, await self.server.metrics_doc()
        return 404, _err(E_UNKNOWN_METHOD, f"no route {path}")


def _route(path: str, table) -> Optional[str]:
    path = path.split("?", 1)[0]
    if not path.startswith("/v1/"):
        return None
    name = path[len("/v1/") :]
    return name if name in table else None


def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # latin-1 never raises, but belt and braces
        raise ValueError("undecodable request head")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"bad request line {lines[0]!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"bad header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return parts[0], parts[1], headers


def _err(code: str, message: Any) -> Dict[str, Any]:
    return {"error": {"code": code, "message": message}}


def _response(status: int, body: Dict[str, Any]) -> bytes:
    payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
    reason = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        413: "Payload Too Large",
        431: "Request Header Fields Too Large",
        500: "Internal Server Error",
        503: "Service Unavailable",
        504: "Gateway Timeout",
    }.get(status, "Error")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(payload)}",
        "Connection: close",
    ]
    code = body.get("error", {}).get("code") if isinstance(body, dict) else None
    if code == E_OVERLOADED:
        head.append("Retry-After: 1")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload


__all__ = ["GatewayConfig", "HttpGateway", "STATUS_FOR_CODE"]
