"""Independent derivation verifier (the Coq-verifier analogue of §5)."""

from .verifier import VerificationError, Verifier, context_from_snapshot, verify_source

__all__ = ["Verifier", "VerificationError", "context_from_snapshot", "verify_source"]
