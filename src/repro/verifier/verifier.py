"""Independent derivation verifier — the "Coq side" of the paper's
prover–verifier architecture (§5).

The prover (:mod:`repro.core.checker`) performs heuristic search; nothing it
does is trusted here.  The verifier re-validates a :class:`ProgramDerivation`
node by node:

* every node's *pre* context is reconstructed from its snapshot and checked
  well-formed;
* children must chain: each child starts exactly where its predecessor (or
  the parent) ended;
* all recorded virtual transformations and weakenings are **replayed**
  through :func:`repro.core.unify.apply_step`, whose context operations
  raise on any violated side condition (focus of a non-empty region,
  retract of a non-empty target, use of a pinned element, …) — so a
  derivation that replays successfully respects every V-rule premise;
* rule-specific side conditions (T2's capability check, T5's tracking
  requirement, T9's separation requirement, T16's isolation requirement,
  the declared-interface shape for T0, …) are re-checked declaratively.

A verified derivation certifies that the prover's *output* is a real typing
derivation of the tempered-domination type system, independent of how the
prover found it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..core.contexts import (
    Binding,
    ContextError,
    ContextSnap,
    StaticContext,
    TrackedVar,
    TrackingContext,
)
from ..core.derivation import Derivation, FuncDerivation, ProgramDerivation
from ..core.functypes import FuncType, elaborate
from ..core.regions import Region, RegionSupply
from ..core.unify import Step, apply_step
from ..lang import ast
from ..lang.parser import Parser
from ..telemetry import registry as _telemetry


class VerificationError(Exception):
    """The derivation is not a valid typing derivation."""

    def __init__(self, message: str, node: Optional[Derivation] = None):
        if node is not None:
            message = f"{node.rule} [{node.expr}]: {message}"
        super().__init__(message)
        self.node = node


def _parse_type(text: str) -> ast.Type:
    return Parser(text).parse_type()


def context_from_snapshot(snap: ContextSnap) -> StaticContext:
    """Reconstruct a full StaticContext from its canonical snapshot."""
    heap_snap, gamma_snap = snap
    max_id = -1
    ctx = StaticContext(RegionSupply())
    for rid, pinned, vars_snap in heap_snap:
        region = Region(rid)
        max_id = max(max_id, rid)
        tc = TrackingContext(pinned=pinned)
        for name, vpinned, fields in vars_snap:
            tv = TrackedVar(pinned=vpinned)
            for fname, target in fields:
                tv.fields[fname] = None if target < 0 else Region(target)
                max_id = max(max_id, target)
            tc.vars[name] = tv
        ctx.heap[region] = tc
    for name, ty_text, rid in gamma_snap:
        region = None if rid < 0 else Region(rid)
        max_id = max(max_id, rid)
        ctx.gamma[name] = Binding(_parse_type(ty_text), region)
    ctx.supply = RegionSupply(max_id + 1)
    # The graph was assembled from scratch above; claiming ownership lets
    # derivation replay mutate it in place without path-copying.
    ctx.claim_ownership()
    ctx.mark_dirty()
    return ctx


class Verifier:
    """Re-validates every function derivation of a program."""

    def __init__(
        self,
        program: ast.Program,
        functypes: Optional[Dict[str, FuncType]] = None,
    ):
        self.program = program
        # Batch callers (repro.pipeline) pass the checker's already
        # elaborated table so a program is elaborated once, not once per
        # tool; nothing in it is trusted — elaboration is deterministic
        # and both sides recompute from the same surface syntax.
        self.functypes: Dict[str, FuncType] = (
            functypes
            if functypes is not None
            else {
                name: elaborate(fdef, program)
                for name, fdef in program.funcs.items()
            }
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def verify_program(self, pd: ProgramDerivation) -> int:
        """Verify all function derivations; returns the node count checked."""
        tel = _telemetry()
        if not tel.enabled:
            return self._verify_program(pd)
        with tel.span("verify.program"):
            count = self._verify_program(pd)
        tel.inc("verifier.certificates", len(pd.funcs))
        return count

    def _verify_program(self, pd: ProgramDerivation) -> int:
        count = 0
        for name in self.program.funcs:
            if name not in pd.funcs:
                raise VerificationError(f"missing derivation for function {name!r}")
            count += self.verify_function(pd.funcs[name])
        return count

    def verify_function(self, fd: FuncDerivation) -> int:
        tel = _telemetry()
        if tel.enabled:
            tel.observe("verifier.certificate_bytes", _certificate_bytes(fd))
            with tel.span(f"verify.fn.{fd.name}"):
                return self._verify_function(fd)
        return self._verify_function(fd)

    def _verify_function(self, fd: FuncDerivation) -> int:
        ftype = self.functypes.get(fd.name)
        if ftype is None:
            raise VerificationError(f"derivation for unknown function {fd.name!r}")
        self._check_interface(ftype, fd)
        node = fd.body
        if node.rule != "T0-Function-Definition":
            raise VerificationError("function derivation must be rooted at T0", node)
        if node.pre != fd.input_snap or node.post != fd.output_snap:
            raise VerificationError("T0 snapshots disagree with the interface", node)
        if node.type_ != fd.result_type or node.region != fd.result_region:
            raise VerificationError("T0 result type/region disagree with the interface", node)
        post = context_from_snapshot(fd.output_snap)
        declared_result = post.lookup(RESULT)
        declared_region = (
            None if declared_result.region is None else declared_result.region.ident
        )
        if declared_region != fd.result_region:
            raise VerificationError(
                "interface result region disagrees with the output context", node
            )
        if len(node.children) != 1:
            raise VerificationError("T0 must have exactly the body child", node)
        body = node.children[0]
        if body.pre != node.pre:
            raise VerificationError("body does not start at the input context", node)
        count = self._verify_node(body)
        ctx = context_from_snapshot(body.post)
        ctx.bind(RESULT, _parse_type(body.type_), _region(body.region))
        self._replay(ctx, node.steps, node)
        if ctx.snapshot() != node.post:
            raise VerificationError(
                "function-exit steps do not reach the declared output", node
            )
        return count + 1

    # ------------------------------------------------------------------
    # Interface shape
    # ------------------------------------------------------------------

    def _check_interface(self, ftype: FuncType, fd: FuncDerivation) -> None:
        pre = context_from_snapshot(fd.input_snap)
        pre.check_well_formed()
        # Params bound with the declared types; region variables realized
        # injectively; tracking contexts empty and unpinned at input.
        realized: Dict[int, Region] = {}
        for pname, pty in ftype.params:
            if not pre.has_var(pname):
                raise VerificationError(
                    f"{fd.name}: parameter {pname!r} missing from input context"
                )
            binding = pre.lookup(pname)
            if str(binding.ty) != str(pty):
                raise VerificationError(
                    f"{fd.name}: parameter {pname!r} bound at {binding.ty}, "
                    f"declared {pty}"
                )
            rv = ftype.input_region[pname]
            if rv is None:
                if binding.region is not None:
                    raise VerificationError(
                        f"{fd.name}: primitive parameter {pname!r} has a region"
                    )
                continue
            if binding.region is None:
                raise VerificationError(
                    f"{fd.name}: parameter {pname!r} lacks a region"
                )
            if rv in realized and realized[rv] != binding.region:
                raise VerificationError(
                    f"{fd.name}: region variable ρ{rv} realized inconsistently"
                )
            realized[rv] = binding.region
        if len(set(realized.values())) != len(realized):
            raise VerificationError(
                f"{fd.name}: distinct region variables share one region at input"
            )
        if len(pre.gamma) != len(ftype.params):
            raise VerificationError(f"{fd.name}: extra input bindings")
        pinned_regions = {
            pre.lookup(p).region for p in ftype.pinned if pre.has_var(p)
        }
        for region, tc in pre.heap.items():
            if not tc.is_empty:
                raise VerificationError(
                    f"{fd.name}: input region {region} is not empty"
                )
            if tc.pinned != (region in pinned_regions):
                raise VerificationError(
                    f"{fd.name}: input region {region} pin status disagrees "
                    "with the pinned-parameter declaration"
                )
        if set(pre.heap) != set(realized.values()):
            raise VerificationError(f"{fd.name}: stray input regions")

        post = context_from_snapshot(fd.output_snap)
        post.check_well_formed()
        out_realized: Dict[int, Region] = {}
        expected_vars = set()
        for pname, pty in ftype.params:
            if pname in ftype.consumes:
                if post.has_var(pname):
                    raise VerificationError(
                        f"{fd.name}: consumed parameter {pname!r} present at output"
                    )
                continue
            expected_vars.add(pname)
            if not post.has_var(pname):
                raise VerificationError(
                    f"{fd.name}: parameter {pname!r} missing from output context"
                )
            rv = ftype.output_region.get(pname)
            binding = post.lookup(pname)
            if rv is None:
                continue
            if binding.region is None:
                raise VerificationError(
                    f"{fd.name}: output parameter {pname!r} lacks a region"
                )
            if rv in out_realized and out_realized[rv] != binding.region:
                raise VerificationError(
                    f"{fd.name}: output region variable ρ{rv} inconsistent"
                )
            out_realized[rv] = binding.region
        if not post.has_var(RESULT):
            raise VerificationError(f"{fd.name}: output lacks the result binding")
        result_binding = post.lookup(RESULT)
        if str(result_binding.ty) != str(ftype.return_type):
            raise VerificationError(
                f"{fd.name}: result type {result_binding.ty} != declared "
                f"{ftype.return_type}"
            )
        if (ftype.result_region is None) != (result_binding.region is None):
            raise VerificationError(f"{fd.name}: result region presence mismatch")
        if ftype.result_region is not None:
            rv = ftype.result_region
            if rv in out_realized and out_realized[rv] != result_binding.region:
                raise VerificationError(f"{fd.name}: result region inconsistent")
            out_realized[rv] = result_binding.region
        # Declared output tracking must be present; nothing else may be.
        declared = {
            (t.var, t.fieldname): t.target for t in ftype.output_tracking
        }
        for region, tc in post.heap.items():
            for name, tv in tc.vars.items():
                for fieldname, target in tv.fields.items():
                    key = (name, fieldname)
                    if key not in declared:
                        raise VerificationError(
                            f"{fd.name}: undeclared output tracking {name}.{fieldname}"
                        )
                    rv = declared.pop(key)
                    if target is None:
                        raise VerificationError(
                            f"{fd.name}: output tracking {name}.{fieldname} is ⊥"
                        )
                    if rv in out_realized and out_realized[rv] != target:
                        raise VerificationError(
                            f"{fd.name}: output tracking region ρ{rv} inconsistent"
                        )
                    out_realized[rv] = target
        if declared:
            missing = ", ".join(f"{v}.{f}" for v, f in declared)
            raise VerificationError(
                f"{fd.name}: declared output tracking missing: {missing}"
            )

    # ------------------------------------------------------------------
    # Node verification
    # ------------------------------------------------------------------

    def _verify_node(self, node: Derivation) -> int:
        tel = _telemetry()
        if tel.enabled:
            tel.inc("verifier.obligations")
            tel.inc(f"verifier.rule.{node.rule}")
        pre = context_from_snapshot(node.pre)
        try:
            pre.check_well_formed()
        except ContextError as exc:
            raise VerificationError(f"ill-formed pre context: {exc}", node) from exc
        handler = self._RULES.get(node.rule)
        if handler is None:
            raise VerificationError(f"unknown rule {node.rule!r}", node)
        handler(self, node, pre)
        post = context_from_snapshot(node.post)
        try:
            post.check_well_formed()
        except ContextError as exc:
            raise VerificationError(f"ill-formed post context: {exc}", node) from exc
        count = 1
        for child in node.children:
            count += self._verify_node(child)
        return count

    # -- helpers ------------------------------------------------------------

    def _replay(
        self, ctx: StaticContext, steps: Iterable[Step], node: Derivation
    ) -> StaticContext:
        tel = _telemetry()
        for step in steps:
            if tel.enabled:
                tel.inc("verifier.steps_replayed")
            try:
                apply_step(ctx, step)
            except ContextError as exc:
                raise VerificationError(
                    f"step {step} violates its side conditions: {exc}", node
                ) from exc
        return ctx

    def _chain(self, node: Derivation, children: Sequence[Derivation]) -> ContextSnap:
        """Children evaluate left-to-right: each must start where the
        previous one ended.  Returns the final snapshot."""
        current = node.pre
        for child in children:
            if child.pre != current:
                raise VerificationError(
                    f"child {child.rule} does not start at its predecessor's "
                    "output context",
                    node,
                )
            current = child.post
        return current

    def _chain_and_replay(
        self, node: Derivation, children: Sequence[Derivation]
    ) -> None:
        """Default linear protocol: children chain, then node.steps run."""
        current = self._chain(node, children)
        ctx = context_from_snapshot(current)
        self._replay(ctx, node.steps, node)
        if ctx.snapshot() != node.post:
            raise VerificationError(
                "steps do not carry the context to the recorded post state", node
            )

    def _require_region_in_post(self, node: Derivation) -> None:
        if node.region is None:
            return
        post = context_from_snapshot(node.post)
        if Region(node.region) not in post.heap:
            raise VerificationError(
                f"result region r{node.region} absent from post context", node
            )

    def _field_decl(self, node: Derivation, base_ty_text: str, fieldname: str):
        base = ast.strip_maybe(_parse_type(base_ty_text))
        if not base.is_struct():
            raise VerificationError(f"field access on non-struct {base}", node)
        try:
            sdef = self.program.struct(base.name)
            return sdef.field_decl(fieldname)
        except KeyError as exc:
            raise VerificationError(str(exc), node) from exc

    # -- rule checks ---------------------------------------------------------

    def _rule_literal(self, node: Derivation, pre: StaticContext) -> None:
        if node.pre != node.post:
            raise VerificationError("literals must not change the context", node)
        if node.type_ not in ("int", "bool", "unit"):
            raise VerificationError(f"bad literal type {node.type_}", node)
        if node.region is not None:
            raise VerificationError("literals are region-free", node)

    def _rule_none(self, node: Derivation, pre: StaticContext) -> None:
        ty = _parse_type(node.type_)
        if not isinstance(ty, ast.MaybeType):
            raise VerificationError("none must have a maybe type", node)
        self._chain_and_replay(node, node.children)
        if ast.strip_maybe(ty).is_struct():
            self._require_region_in_post(node)

    def _rule_var(self, node: Derivation, pre: StaticContext) -> None:
        if node.pre != node.post:
            raise VerificationError("variable reference must not change context", node)
        name = node.meta.get("var")
        if not isinstance(name, str) or not pre.has_var(name):
            raise VerificationError(f"variable {name!r} unbound in pre context", node)
        binding = pre.lookup(name)
        if str(binding.ty) != node.type_:
            raise VerificationError("variable type mismatch", node)
        region = None if binding.region is None else binding.region.ident
        if region != node.region:
            raise VerificationError("variable region mismatch", node)
        if binding.region is not None and binding.region not in pre.heap:
            raise VerificationError(
                "variable's region capability absent (consumed)", node
            )

    def _rule_linear(self, node: Derivation, pre: StaticContext) -> None:
        """Generic: children chain, steps replay."""
        self._chain_and_replay(node, node.children)
        self._require_region_in_post(node)

    def _rule_field(self, node: Derivation, pre: StaticContext) -> None:
        self._chain_and_replay(node, node.children)
        base = node.children[0]
        decl = self._field_decl(node, base.type_, node.meta["field"])
        if decl.is_iso:
            raise VerificationError("T4 applied to an iso field", node)
        if str(decl.ty) != node.type_:
            raise VerificationError("field type mismatch", node)
        if ast.strip_maybe(decl.ty).is_struct():
            if node.region != base.region:
                raise VerificationError(
                    "non-iso field must stay in its owner's region", node
                )
        elif node.region is not None:
            raise VerificationError("primitive field has a region", node)

    def _rule_iso_field(self, node: Derivation, pre: StaticContext) -> None:
        self._chain_and_replay(node, node.children)
        name = node.meta["var"]
        fieldname = node.meta["field"]
        base = node.children[0]
        decl = self._field_decl(node, base.type_, fieldname)
        if not decl.is_iso:
            raise VerificationError("T5 applied to a non-iso field", node)
        post = context_from_snapshot(node.post)
        tv = post.tracked_var(name)
        if tv is None or fieldname not in tv.fields:
            raise VerificationError(
                f"{name}.{fieldname} not tracked in post context", node
            )
        target = tv.fields[fieldname]
        if target is None:
            raise VerificationError("read of an invalidated (⊥) iso field", node)
        if ast.strip_maybe(decl.ty).is_struct():
            if node.region != target.ident:
                raise VerificationError(
                    "iso read must produce the tracked target region", node
                )

    def _rule_field_assign(self, node: Derivation, pre: StaticContext) -> None:
        self._chain_and_replay(node, node.children)
        base = node.children[0]
        decl = self._field_decl(node, base.type_, node.meta["field"])
        if decl.is_iso:
            raise VerificationError("T6 applied to an iso field", node)
        for step in node.steps:
            if step.rule != "V5-Attach":
                raise VerificationError(
                    f"T6 may only attach regions, found {step.rule}", node
                )

    def _rule_iso_assign(self, node: Derivation, pre: StaticContext) -> None:
        self._chain_and_replay(node, node.children)
        name = node.meta["var"]
        fieldname = node.meta["field"]
        base = node.children[0]
        value = node.children[1]
        decl = self._field_decl(node, base.type_, fieldname)
        if not decl.is_iso:
            raise VerificationError("T7 applied to a non-iso field", node)
        post = context_from_snapshot(node.post)
        tv = post.tracked_var(name)
        if tv is None or fieldname not in tv.fields:
            raise VerificationError("assigned iso field is not tracked", node)
        target = tv.fields[fieldname]
        if target is None or target.ident != value.region:
            raise VerificationError(
                "iso assignment must track the assigned value's region", node
            )

    def _rule_new(self, node: Derivation, pre: StaticContext) -> None:
        self._chain_and_replay(node, node.children)
        struct_name = node.meta.get("struct")
        if struct_name not in self.program.structs:
            raise VerificationError(f"unknown struct {struct_name!r}", node)
        sdef = self.program.struct(struct_name)
        # Iso tracking installed by new must target iso fields only.
        for step in node.steps:
            if step.rule == "T7-SetField":
                _nm, fieldname, _tg = step.args
                if not sdef.field_decl(fieldname).is_iso:
                    raise VerificationError(
                        f"new tracks non-iso field {fieldname!r}", node
                    )
        self._require_region_in_post(node)

    def _rule_call(self, node: Derivation, pre: StaticContext) -> None:
        fname = node.meta.get("function")
        ftype = self.functypes.get(fname)
        if ftype is None:
            raise VerificationError(f"call to unknown function {fname!r}", node)
        if len(node.children) != len(ftype.params):
            raise VerificationError("argument count mismatch", node)
        current = self._chain(node, node.children)
        # Argument types and region grouping (the separation condition).
        group: Dict[int, int] = {}
        arg_var: Dict[str, Optional[str]] = {}
        for child, (pname, pty) in zip(node.children, ftype.params):
            if child.type_ != str(pty):
                raise VerificationError(
                    f"argument {pname!r} has type {child.type_}, expected {pty}",
                    node,
                )
            arg_var[pname] = (
                child.meta.get("var")
                if child.rule == "T2-Variable-Ref"
                else None
            )
            rv = ftype.input_region[pname]
            if rv is None:
                continue
            if child.region is None:
                raise VerificationError(f"argument {pname!r} lacks a region", node)
            group.setdefault(rv, child.region)

        ctx = context_from_snapshot(current)
        merged: Dict[int, Region] = {
            rv: Region(region) for rv, region in group.items()
        }
        pinned_rvs = {ftype.input_region[p] for p in ftype.pinned}

        def substitute(src: Region, dest: Region) -> None:
            for rv, region in list(merged.items()):
                if region == src:
                    merged[rv] = dest

        # Phase A: call-site preparation — attaches (argument grouping) and
        # the emptying of argument tracking contexts.
        steps = list(node.steps)
        index = 0
        prep_rules = {"V5-Attach", "V2-Unfocus", "V4-Retract"}
        while index < len(steps) and steps[index].rule in prep_rules:
            step = steps[index]
            self._replay(ctx, [step], node)
            if step.rule == "V5-Attach":
                substitute(step.args[0], step.args[1])
            index += 1

        # The call's input condition (§4.8): every argument region presents
        # an empty tracking context — except pinned parameters (TS2).
        values = list(merged.values())
        if len(set(values)) != len(values):
            raise VerificationError(
                "arguments for separate parameter regions share a region", node
            )
        for rv, region in merged.items():
            if rv in pinned_rvs:
                continue
            tc = ctx.heap.get(region)
            if tc is None:
                raise VerificationError(
                    f"argument region {region} missing at the call point", node
                )
            if not tc.is_empty:
                raise VerificationError(
                    f"argument region {region} has a non-empty tracking "
                    "context at the call (only pinned parameters allow this)",
                    node,
                )

        # Phase B: consumed parameter regions are dropped.
        expected_consumed = {
            merged[ftype.input_region[p]] for p in ftype.consumes
        }
        dropped = set()
        while index < len(steps) and steps[index].rule == "W-DropRegion":
            region = steps[index].args[0]
            if region not in expected_consumed:
                raise VerificationError(
                    f"call dropped non-consumed region {region}", node
                )
            self._replay(ctx, [steps[index]], node)
            dropped.add(region)
            index += 1
        if dropped != expected_consumed:
            missing = expected_consumed - dropped
            raise VerificationError(
                f"consumed parameter regions not dropped: {sorted(missing)}",
                node,
            )

        # Phase C/D: output merges, fresh output regions, and declared
        # output-tracking installs.
        declared = {}
        for entry in ftype.output_tracking:
            var = arg_var.get(entry.var)
            if var is not None:
                declared[(var, entry.fieldname)] = entry.target
        fresh_regions = set()
        while index < len(steps):
            step = steps[index]
            if step.rule in ("V5-Attach",):
                self._replay(ctx, [step], node)
                substitute(step.args[0], step.args[1])
            elif step.rule == "W-FreshRegion":
                self._replay(ctx, [step], node)
                fresh_regions.add(step.args[0])
            elif step.rule == "V1-Focus":
                name = step.args[0]
                if name not in {v for v in arg_var.values() if v}:
                    raise VerificationError(
                        f"call focused non-argument variable {name!r}", node
                    )
                self._replay(ctx, [step], node)
            elif step.rule == "T7-SetField":
                name, fieldname, target = step.args
                key = (name, fieldname)
                if key not in declared:
                    raise VerificationError(
                        f"call installed undeclared tracking {name}.{fieldname}",
                        node,
                    )
                rv = declared[key]
                expected_region = (
                    Region(node.region)
                    if rv == ftype.result_region and node.region is not None
                    else None
                )
                if expected_region is None:
                    # A non-result output region: must be an argument region
                    # or one of this call's fresh output regions.
                    if target not in fresh_regions and target not in set(
                        merged.values()
                    ):
                        raise VerificationError(
                            "call tracking install targets a foreign region",
                            node,
                        )
                elif target != expected_region:
                    raise VerificationError(
                        "call tracking install disagrees with the declared "
                        "result region",
                        node,
                    )
                self._replay(ctx, [step], node)
            else:
                raise VerificationError(
                    f"unexpected call-site step {step.rule}", node
                )
            index += 1

        if ctx.snapshot() != node.post:
            raise VerificationError("call steps do not reach the post context", node)
        if node.type_ != str(ftype.return_type):
            raise VerificationError("call result type mismatch", node)
        if (node.region is None) != (ftype.result_region is None):
            raise VerificationError("call result region presence mismatch", node)
        self._require_region_in_post(node)

    def _rule_send(self, node: Derivation, pre: StaticContext) -> None:
        self._chain_and_replay(node, node.children)
        consumed = [s for s in node.steps if s.rule == "T16-ConsumeRegion"]
        if len(consumed) != 1:
            raise VerificationError("send must consume exactly one region", node)
        region = consumed[0].args[0]
        if region.ident != node.children[0].region:
            raise VerificationError("send consumed a different region", node)

    def _rule_recv(self, node: Derivation, pre: StaticContext) -> None:
        self._chain_and_replay(node, node.children)
        ty = _parse_type(node.type_)
        if not ast.strip_maybe(ty).is_struct():
            raise VerificationError("recv of a non-struct type", node)
        self._require_region_in_post(node)

    def _rule_seq(self, node: Derivation, pre: StaticContext) -> None:
        self._chain_and_replay(node, node.children)
        self._require_region_in_post(node)

    def _rule_let(self, node: Derivation, pre: StaticContext) -> None:
        self._chain_and_replay(node, node.children)
        name = node.meta.get("var")
        post = context_from_snapshot(node.post)
        if not post.has_var(name):
            raise VerificationError(f"let-bound {name!r} missing from post", node)

    def _branch_join(
        self,
        node: Derivation,
        start: ContextSnap,
        then_child: Derivation,
        else_child: Optional[Derivation],
        intro_steps: Tuple[Step, ...],
    ) -> None:
        """Shared validation for T13/T15/T-LetSome joins."""
        then_start = context_from_snapshot(start)
        self._replay(then_start, intro_steps, node)
        if then_child.pre != then_start.snapshot():
            raise VerificationError("then branch starts at the wrong context", node)
        join_then = node.meta.get("join_then", ())
        ctx = context_from_snapshot(then_child.post)
        self._replay(ctx, join_then, node)
        if ctx.snapshot() != node.post:
            raise VerificationError(
                "then-branch join steps do not reach the post context", node
            )
        join_else = node.meta.get("join_else", ())
        if else_child is not None:
            if else_child.pre != start:
                raise VerificationError(
                    "else branch starts at the wrong context", node
                )
            ctx = context_from_snapshot(else_child.post)
        else:
            ctx = context_from_snapshot(start)
        self._replay(ctx, join_else, node)
        if ctx.snapshot() != node.post:
            raise VerificationError(
                "else-branch join steps do not reach the post context", node
            )

    def _rule_if(self, node: Derivation, pre: StaticContext) -> None:
        cond = node.children[0]
        if cond.pre != node.pre:
            raise VerificationError("condition starts at the wrong context", node)
        if cond.type_ != "bool":
            raise VerificationError("condition must be bool", node)
        then_child = node.children[1]
        else_child = node.children[2] if node.meta.get("has_else") else None
        self._verify_join_result(node, then_child, else_child)
        self._branch_join(node, cond.post, then_child, else_child, ())

    def _rule_let_some(self, node: Derivation, pre: StaticContext) -> None:
        scrut = node.children[0]
        if scrut.pre != node.pre:
            raise VerificationError("scrutinee starts at the wrong context", node)
        ty = _parse_type(scrut.type_)
        if not isinstance(ty, ast.MaybeType):
            raise VerificationError("let-some scrutinee must be a maybe", node)
        intro = tuple(node.meta.get("intro_steps", ()))
        for step in intro:
            if step.rule != "W-Bind":
                raise VerificationError("let-some intro must only bind", node)
            _name, ty_text, region = step.args
            if str(ast.strip_maybe(ty)) != ty_text:
                raise VerificationError("let-some binds the wrong type", node)
            bound_region = None if region is None else region.ident
            if bound_region != scrut.region:
                raise VerificationError("let-some binds the wrong region", node)
        then_child = node.children[1]
        else_child = node.children[2] if node.meta.get("has_else") else None
        self._verify_join_result(node, then_child, else_child)
        self._branch_join(node, scrut.post, then_child, else_child, intro)

    def _rule_if_disconnected(self, node: Derivation, pre: StaticContext) -> None:
        left, right = node.children[0], node.children[1]
        if left.pre != node.pre:
            raise VerificationError("left argument starts at the wrong context", node)
        if right.pre != left.post:
            raise VerificationError("right argument starts at the wrong context", node)
        if left.region is None or left.region != right.region:
            raise VerificationError(
                "if-disconnected arguments must share one region", node
            )
        base = context_from_snapshot(right.post)
        self._replay(base, node.steps, node)
        region = node.meta["region"]
        tc = base.heap.get(region)
        if tc is None or not tc.is_empty:
            raise VerificationError(
                "if-disconnected requires an empty tracking context", node
            )
        intro = tuple(node.meta.get("intro_steps", ()))
        # The split must move exactly the left variable to the fresh region,
        # drop every other alias, and ⊥ every inbound tracked field.
        split = context_from_snapshot(base.snapshot())
        self._replay(split, intro, node)
        lname, rname = node.meta["left"], node.meta["right"]
        fresh = node.meta["split_region"]
        if split.gamma[lname].region != fresh:
            raise VerificationError("split did not move the left argument", node)
        for name in split.vars_in_region(region):
            if name != rname:
                raise VerificationError(
                    f"alias {name!r} survived the region split", node
                )
        for _r, owner, fieldname in split.inbound_refs(region):
            raise VerificationError(
                f"inbound tracked field {owner}.{fieldname} survived the split",
                node,
            )
        then_child = node.children[2]
        else_child = node.children[3] if node.meta.get("has_else") else None
        self._verify_join_result(node, then_child, else_child)
        self._branch_join(node, base.snapshot(), then_child, else_child, intro)

    def _verify_join_result(
        self,
        node: Derivation,
        then_child: Derivation,
        else_child: Optional[Derivation],
    ) -> None:
        if else_child is not None:
            if then_child.type_ != else_child.type_:
                raise VerificationError("branch types differ", node)
            if node.type_ != then_child.type_:
                raise VerificationError("join result type mismatch", node)
        elif node.type_ != "unit":
            raise VerificationError("if-without-else must be unit", node)
        self._require_region_in_post(node)

    def _rule_while(self, node: Derivation, pre: StaticContext) -> None:
        entry = context_from_snapshot(node.pre)
        self._replay(entry, node.steps, node)
        entry_snap = entry.snapshot()
        cond, body = node.children[0], node.children[1]
        if cond.pre != entry_snap:
            raise VerificationError("loop condition starts off-invariant", node)
        if cond.type_ != "bool":
            raise VerificationError("loop condition must be bool", node)
        if body.pre != cond.post:
            raise VerificationError("loop body starts at the wrong context", node)
        loop_steps = tuple(node.meta.get("loop_steps", ()))
        back = context_from_snapshot(body.post)
        self._replay(back, loop_steps, node)
        if back.snapshot() != entry_snap:
            raise VerificationError(
                "loop body does not re-establish the invariant", node
            )
        if node.post != cond.post:
            raise VerificationError("loop exit context mismatch", node)
        if node.type_ != "unit":
            raise VerificationError("while has unit type", node)

    def _rule_assign_var(self, node: Derivation, pre: StaticContext) -> None:
        self._chain_and_replay(node, node.children)
        name = node.meta.get("var")
        post = context_from_snapshot(node.post)
        if not post.has_var(name):
            raise VerificationError("assigned variable missing from post", node)
        binding = post.lookup(name)
        value_child = node.children[0]
        if str(binding.ty) != value_child.type_:
            raise VerificationError("assignment type mismatch", node)
        region = None if binding.region is None else binding.region.ident
        if region != value_child.region:
            raise VerificationError("assignment region mismatch", node)

    _RULES = {
        "T1-Literal": _rule_literal,
        "T12-None": _rule_none,
        "T2-Variable-Ref": _rule_var,
        "T11-Some": _rule_linear,
        "T-IsNone": _rule_linear,
        "T-IsSome": _rule_linear,
        "T-Unop": _rule_linear,
        "T-Binop": _rule_linear,
        "T3-Sequence": _rule_seq,
        "T-Let": _rule_let,
        "T-LetSome": _rule_let_some,
        "T13-If-Statement": _rule_if,
        "T14-While": _rule_while,
        "T15-If-Disconnected": _rule_if_disconnected,
        "T4-Field-Reference": _rule_field,
        "T5-Isolated-Field-Reference": _rule_iso_field,
        "T6-Field-Assignment": _rule_field_assign,
        "T7-Isolated-Field-Assignment": _rule_iso_assign,
        "T8-Assign-Var": _rule_assign_var,
        "T10-New-Loc": _rule_new,
        "T9-Function-Application": _rule_call,
        "T16-Send": _rule_send,
        "T17-Receive": _rule_recv,
    }


RESULT = "$result"


def _certificate_bytes(fd: FuncDerivation) -> int:
    """Size of one function's certificate in its JSON wire form — the cost
    a separate verifying process would pay to receive it."""
    from ..core.serialize import func_derivation_to_json

    return len(func_derivation_to_json(fd).encode("utf-8"))


def _region(ident: Optional[int]) -> Optional[Region]:
    return None if ident is None else Region(ident)


def verify_source(source: str, program: Optional[ast.Program] = None) -> int:
    """Check and then independently verify a program; returns node count.

    Pass an already parsed ``program`` to skip the re-parse; either way the
    function-type table is elaborated exactly once and shared between the
    checker and the verifier (batch callers go further and reuse
    :class:`repro.pipeline.ProgramSession` across both phases).
    """
    from ..core.checker import Checker
    from ..lang import parse_program

    if program is None:
        program = parse_program(source)
    checker = Checker(program)
    derivation = checker.check_program()
    return Verifier(program, functypes=checker.functypes).verify_program(derivation)
