"""Run-time invariant audits (I1/I2 of §6) and dynamic region graphs."""

from .invariants import (
    InvariantViolation,
    check_iso_domination,
    check_refcounts,
    check_reservation_closed,
    check_reservations_disjoint,
)
from .gc import GcStats, collect, garbage, reachable_from
from .schedules import ExplorationReport, explore_all_schedules
from .regiongraph import RegionGraph, build_region_graph, to_dot, to_networkx

__all__ = [
    "InvariantViolation",
    "check_refcounts",
    "check_reservations_disjoint",
    "check_reservation_closed",
    "check_iso_domination",
    "GcStats",
    "collect",
    "garbage",
    "reachable_from",
    "ExplorationReport",
    "explore_all_schedules",
    "RegionGraph",
    "build_region_graph",
    "to_dot",
    "to_networkx",
]
