"""Dynamic region-graph discovery (the "detailed region graphs" of the
introduction's contribution list).

Given a heap and a set of roots, partition the reachable object graph into
*dynamic regions*: maximal groups of objects connected by non-iso
references, with iso references forming the edges of a region DAG/tree.
This is the run-time counterpart of the static region structure drawn in
fig 8 and is exposed to examples/tests for visualization and auditing.

Uses :mod:`networkx` for the condensation when available (it is listed as
an environment dependency), with a pure-Python fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..runtime.heap import Heap
from ..runtime.values import Loc, is_loc


@dataclass
class RegionGraph:
    """Objects partitioned into dynamic regions, plus iso edges between
    regions."""

    regions: List[FrozenSet[Loc]]
    #: iso edges: (owner region index, owner loc, field, target region index)
    edges: List[Tuple[int, Loc, str, int]]
    region_of: Dict[Loc, int] = field(default_factory=dict)

    def region_index(self, loc: Loc) -> int:
        return self.region_of[loc]

    def same_region(self, a: Loc, b: Loc) -> bool:
        return self.region_of[a] == self.region_of[b]

    def is_tree(self) -> bool:
        """Whether the region graph forms a forest (each region has at most
        one inbound iso edge) — the tempered-domination shape when no
        tracking is active."""
        inbound: Dict[int, int] = {}
        for _owner_region, _loc, _fieldname, target in self.edges:
            inbound[target] = inbound.get(target, 0) + 1
            if inbound[target] > 1:
                return False
        return True


def build_region_graph(heap: Heap, roots: Iterable[Loc]) -> RegionGraph:
    """Discover the dynamic region structure reachable from ``roots``."""
    # Reachable set (crossing all references).
    reachable: Set[Loc] = set()
    stack = list(roots)
    while stack:
        loc = stack.pop()
        if loc in reachable or loc not in heap:
            continue
        reachable.add(loc)
        for value in heap.obj(loc).fields.values():
            if is_loc(value):
                stack.append(value)

    # Union-find over non-iso connectivity (undirected: a non-iso reference
    # places both endpoints in one region).
    parent: Dict[Loc, Loc] = {loc: loc for loc in reachable}

    def find(x: Loc) -> Loc:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(x: Loc, y: Loc) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[rx] = ry

    iso_refs: List[Tuple[Loc, str, Loc]] = []
    for loc in reachable:
        obj = heap.obj(loc)
        for decl in obj.struct.fields:
            value = obj.fields[decl.name]
            if not is_loc(value) or value not in reachable:
                continue
            if decl.is_iso:
                iso_refs.append((loc, decl.name, value))
            else:
                union(loc, value)

    groups: Dict[Loc, Set[Loc]] = {}
    for loc in reachable:
        groups.setdefault(find(loc), set()).add(loc)
    regions = [frozenset(group) for _root, group in sorted(groups.items())]
    region_of: Dict[Loc, int] = {}
    for index, region in enumerate(regions):
        for loc in region:
            region_of[loc] = index

    edges = [
        (region_of[owner], owner, fieldname, region_of[target])
        for owner, fieldname, target in iso_refs
    ]
    return RegionGraph(regions=regions, edges=edges, region_of=region_of)


def to_dot(graph: RegionGraph, heap: Optional["Heap"] = None) -> str:
    """Graphviz DOT rendering of the region graph (the fig 8 picture).

    Each region is a cluster of its objects; iso references are the
    inter-cluster edges.  Pass the heap to label objects with their struct
    names.
    """
    lines = ["digraph regions {", "  compound=true;", "  node [shape=box];"]
    anchor: Dict[int, str] = {}
    for index, region in enumerate(graph.regions):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="region {index}";')
        for loc in sorted(region):
            label = str(loc)
            if heap is not None and loc in heap:
                label = f"{heap.obj(loc).struct.name} {loc}"
            node = f"n{loc.ident}"
            anchor.setdefault(index, node)
            lines.append(f'    {node} [label="{label}"];')
        lines.append("  }")
    for owner_region, owner, fieldname, target in graph.edges:
        src = f"n{owner.ident}"
        dest = anchor[target]
        lines.append(
            f'  {src} -> {dest} [label="{fieldname}", lhead=cluster_{target}];'
        )
    # Intra-region (non-iso) edges, when the heap is available.
    if heap is not None:
        for index, region in enumerate(graph.regions):
            for loc in sorted(region):
                obj = heap.obj(loc)
                for decl in obj.struct.fields:
                    if decl.is_iso:
                        continue
                    value = obj.fields[decl.name]
                    from ..runtime.values import is_loc

                    if is_loc(value) and value in region:
                        lines.append(
                            f"  n{loc.ident} -> n{value.ident} "
                            f'[label="{decl.name}", style=dashed];'
                        )
    lines.append("}")
    return "\n".join(lines)


def to_networkx(graph: RegionGraph):
    """The region graph as a networkx DiGraph (regions as nodes)."""
    import networkx as nx

    g = nx.MultiDiGraph()
    for index, region in enumerate(graph.regions):
        g.add_node(index, size=len(region))
    for owner_region, owner, fieldname, target in graph.edges:
        g.add_edge(owner_region, target, owner=owner.ident, field=fieldname)
    return g
