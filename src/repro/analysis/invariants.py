"""Executable run-time invariants (§6).

The paper's soundness proof hinges on two run-time invariants; here they
are implemented as heap audits that tests run after (and during) execution:

* **I1 Reservation-Sufficiency** — every location a thread's evaluation can
  touch is inside its reservation.  Operationally we check the stronger,
  easily-audited property that reservations are pairwise disjoint and that
  everything reachable from a reservation stays inside it (reachability
  closure), which is what makes every dynamic check of fig 7 succeed.

* **I2 Tree-Of-Untracked-Regions** — any two heap paths from live roots
  reaching the same location traverse the same sequence of untracked
  isolated references.  With no static tracking information at hand (audits
  run between statements, where the corpus programs hold no tracked state),
  this specializes to: within the reachable heap, every iso field *dominates*
  its reachable subgraph — i.e. removing the iso edge makes its whole
  subgraph unreachable from the roots.

Also audited: the §5.2 stored reference counts match a from-scratch recount
(their accuracy is what makes ``if disconnected`` sound).
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple

from ..runtime.heap import Heap
from ..runtime.values import Loc, is_loc


class InvariantViolation(Exception):
    """A run-time invariant audit failed."""


def check_reservations_disjoint(reservations: Iterable[Set[Loc]]) -> None:
    seen: Set[Loc] = set()
    for index, reservation in enumerate(reservations):
        overlap = seen & reservation
        if overlap:
            raise InvariantViolation(
                f"reservations overlap on {sorted(overlap)} (thread {index})"
            )
        seen |= reservation


def check_reservation_closed(heap: Heap, reservation: Set[Loc], roots: Iterable[Loc]) -> None:
    """I1: everything reachable from the roots lies inside the reservation."""
    for root in roots:
        missing = heap.live_set(root) - reservation
        if missing:
            raise InvariantViolation(
                f"locations {sorted(missing)} reachable from {root} escape "
                "the reservation"
            )


def check_refcounts(heap: Heap) -> None:
    """§5.2: incrementally-maintained stored counts equal a full recount."""
    expected = heap.recompute_refcounts()
    for loc, count in expected.items():
        actual = heap.obj(loc).stored_refcount
        if actual != count:
            raise InvariantViolation(
                f"stored refcount of {loc} is {actual}, recount says {count}"
            )


def _reachable(heap: Heap, roots: Iterable[Loc]) -> Set[Loc]:
    seen: Set[Loc] = set()
    stack = [r for r in roots]
    while stack:
        loc = stack.pop()
        if loc in seen or loc not in heap:
            continue
        seen.add(loc)
        for value in heap.obj(loc).fields.values():
            if is_loc(value):
                stack.append(value)
    return seen


def check_iso_domination(heap: Heap, roots: Iterable[Loc]) -> None:
    """I2 (untracked specialization): every iso edge in the *reachable* heap
    dominates its target's subgraph — cutting the edge must make the entire
    subgraph reachable through it unreachable from the roots."""
    roots = list(roots)
    reachable = _reachable(heap, roots)
    iso_edges: List[Tuple[Loc, str, Loc]] = []
    for loc in reachable:
        obj = heap.obj(loc)
        for decl in obj.struct.fields:
            if decl.is_iso:
                value = obj.fields[decl.name]
                if is_loc(value):
                    iso_edges.append((loc, decl.name, value))
    for owner, fieldname, target in iso_edges:
        # Reachability with the edge cut.
        seen: Set[Loc] = set()
        stack = list(roots)
        while stack:
            loc = stack.pop()
            if loc in seen or loc not in heap:
                continue
            seen.add(loc)
            obj = heap.obj(loc)
            for decl in obj.struct.fields:
                value = obj.fields[decl.name]
                if not is_loc(value):
                    continue
                if loc == owner and decl.name == fieldname:
                    continue  # the cut edge
                stack.append(value)
        target_subgraph = _reachable(heap, [target])
        leaked = seen & target_subgraph
        if leaked:
            raise InvariantViolation(
                f"iso field {owner}.{fieldname} does not dominate its "
                f"subgraph: {sorted(leaked)} reachable around it"
            )
