"""Exhaustive schedule exploration for small concurrent configurations.

Random schedules (experiment E7) sample the interleaving space; this module
*enumerates* it.  Computation between communication events is deterministic
— a thread's behaviour can only depend on the interleaving through the
``send``/``recv`` pairings it participates in — so it suffices to explore
every sequence of rendezvous decisions.  Each thread is run to its next
blocking point, the set of enabled (sender, receiver) pairings forms the
branching, and a depth-first replay visits every branch.

For each complete schedule the explorer records thread results and checks
reservation disjointness and stored-refcount exactness; any
:class:`~repro.runtime.machine.ReservationViolation`, deadlock, or invariant
failure is reported with the offending decision sequence.  On small
instances of the corpus pipelines this *proves* schedule-independence
(within the explored scope) rather than sampling it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lang import ast
from ..runtime.heap import Heap
from ..runtime.machine import ReservationViolation
from ..runtime.smallstep import (
    BLOCKED_RECV,
    BLOCKED_SEND,
    DONE,
    RUNNING,
    Config,
)
from .invariants import InvariantViolation, check_refcounts

#: A schedule is a sequence of (sender index, receiver index) decisions.
Decision = Tuple[int, int]


@dataclass
class ScheduleOutcome:
    decisions: Tuple[Decision, ...]
    results: Tuple[object, ...]
    deadlocked: bool = False


@dataclass
class ExplorationReport:
    outcomes: List[ScheduleOutcome] = field(default_factory=list)
    violations: List[Tuple[Tuple[Decision, ...], str]] = field(default_factory=list)
    truncated: bool = False

    @property
    def schedules_explored(self) -> int:
        return len(self.outcomes)

    def distinct_results(self) -> Set[Tuple[object, ...]]:
        return {o.results for o in self.outcomes if not o.deadlocked}

    def all_agree(self) -> bool:
        return not self.violations and len(self.distinct_results()) <= 1


def _run_until_blocked(configs: Sequence[Config]) -> None:
    for config in configs:
        while config.status == RUNNING:
            config.step()


def _enabled_pairings(configs: Sequence[Config]) -> List[Decision]:
    out = []
    for si, sender in enumerate(configs):
        if sender.status != BLOCKED_SEND:
            continue
        struct = sender.pending_send[0]
        for ri, receiver in enumerate(configs):
            if (
                receiver.status == BLOCKED_RECV
                and receiver.pending_recv_struct == struct
            ):
                out.append((si, ri))
    return out


def _replay(
    program: ast.Program,
    spawns: Sequence[Tuple[str, Sequence[object]]],
    decisions: Sequence[Decision],
) -> Tuple[List[Config], Heap]:
    """Deterministically re-execute a prefix of rendezvous decisions."""
    heap = Heap()
    configs = [
        Config(program, heap, set(), func, list(args)) for func, args in spawns
    ]
    _run_until_blocked(configs)
    for sender_index, receiver_index in decisions:
        sender = configs[sender_index]
        receiver = configs[receiver_index]
        assert sender.status == BLOCKED_SEND
        assert receiver.status == BLOCKED_RECV
        _struct, root, live = sender.pending_send
        sender.complete_send()
        receiver.complete_recv(root, live)
        _run_until_blocked(configs)
    return configs, heap


def _audit(configs: Sequence[Config], heap: Heap) -> None:
    seen: Set = set()
    for config in configs:
        if seen & config.reservation:
            raise InvariantViolation("reservations overlap")
        seen |= config.reservation
    check_refcounts(heap)


def explore_all_schedules(
    program: ast.Program,
    spawns: Sequence[Tuple[str, Sequence[object]]],
    max_schedules: int = 10_000,
) -> ExplorationReport:
    """Depth-first enumeration of every rendezvous ordering.

    ``spawns`` is a list of (function name, args) for the thread tuple.
    Returns a report of every complete schedule's results plus any
    violations found.
    """
    report = ExplorationReport()

    def dfs(decisions: Tuple[Decision, ...]) -> None:
        if report.truncated:
            return
        if len(report.outcomes) + len(report.violations) >= max_schedules:
            report.truncated = True
            return
        try:
            configs, heap = _replay(program, spawns, decisions)
            _audit(configs, heap)
        except (ReservationViolation, InvariantViolation) as exc:
            report.violations.append((decisions, str(exc)))
            return
        options = _enabled_pairings(configs)
        if not options:
            blocked = any(
                c.status in (BLOCKED_SEND, BLOCKED_RECV) for c in configs
            )
            report.outcomes.append(
                ScheduleOutcome(
                    decisions=decisions,
                    results=tuple(c.result for c in configs),
                    deadlocked=blocked,
                )
            )
            return
        for option in options:
            dfs(decisions + (option,))

    dfs(())
    return report
