"""Reachability analysis and garbage collection for the runtime heap.

The paper's semantics never reclaim memory: detached spine nodes (e.g. the
excised node in fig 2's ``remove_tail``) simply become unreachable.  A real
implementation would collect them — and doing so matters for more than
space: stored reference counts (§5.2) count *all* non-iso heap references,
including those held by garbage, so stale garbage pointing into a live
region makes ``if disconnected`` conservatively answer "connected".
Collecting the garbage (and dropping its contribution to the counts)
restores precision.  ``tests/test_gc.py`` demonstrates exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Set

from ..runtime.heap import Heap
from ..runtime.values import Loc, is_loc


@dataclass
class GcStats:
    live: int
    collected: int
    refcount_corrections: int


def reachable_from(heap: Heap, roots: Iterable[Loc]) -> Set[Loc]:
    """All locations reachable from the roots (crossing every field)."""
    seen: Set[Loc] = set()
    stack = [r for r in roots if r in heap]
    while stack:
        loc = stack.pop()
        if loc in seen:
            continue
        seen.add(loc)
        for value in heap.obj(loc).fields.values():
            if is_loc(value) and value not in seen and value in heap:
                stack.append(value)
    return seen


def garbage(heap: Heap, roots: Iterable[Loc]) -> Set[Loc]:
    """Locations unreachable from the roots."""
    live = reachable_from(heap, roots)
    return {loc for loc in heap.locations() if loc not in live}


def collect(heap: Heap, roots: Iterable[Loc]) -> GcStats:
    """Delete unreachable objects, maintaining stored reference counts.

    Non-iso references *from* garbage *into* live objects are exactly the
    stale counts that blunt the §5.2 disconnection check; each one removed
    is counted as a correction.
    """
    live = reachable_from(heap, roots)
    dead = [loc for loc in heap.locations() if loc not in live]
    corrections = 0
    for loc in dead:
        obj = heap.obj(loc)
        for decl in obj.struct.fields:
            if decl.is_iso:
                continue
            value = obj.fields[decl.name]
            if is_loc(value) and value in live:
                heap.obj(value).stored_refcount -= 1
                corrections += 1
    for loc in dead:
        del heap._objects[loc]  # noqa: SLF001 — the collector is a heap friend
    return GcStats(
        live=len(live), collected=len(dead), refcount_corrections=corrections
    )
