"""Seeded generator of random FCL programs for the differential fuzzer.

Programs are *mostly well-typed by construction*: statements are drawn
from templates whose region discipline is known (a consumed variable is
retired from the pools, ``if disconnected`` operands are linked into one
region first, loop bodies only touch loop-local state), so the checker
accepts the bulk of the stream while still being exercised on focus,
retract, attach, send/recv, and `if disconnected` forms.  Two shapes:

* ``pipeline`` — 2–4 threads chained ``source → relay* → sink`` with a
  distinct struct type per hop (send/recv pairing is by type), balanced
  send/recv counts (deadlock-free by construction), and randomized
  per-thread compute;
* ``single`` — one thread of straight-line/branchy/loopy compute with no
  messaging.

Every program also carries a small fixed library (``chain``/``chop`` are
the quickstart list builders) that collectively exercises all five
virtual transformations V1–V5, so `checker.vt.*` coverage is a property
of every campaign, not an accident of the dice.

:func:`mutate` derives "should-reject" variants by re-using a variable
the base program consumed (use-after-send, double consume, alias escape,
aliased arguments).  The differential oracles do not *assume* mutants are
rejected — a mutant the checker accepts is simply run under the full
dynamic-check regime, which is exactly how a checker bug becomes a
caught soundness violation (see :mod:`repro.fuzz.oracles`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

#: Struct + helper prelude shared by every generated program.  ``chain``
#: and ``chop`` are the quickstart singly-linked-list builders (V1–V4);
#: ``keep_one`` attaches into a non-iso container (V5-Attach).
PRELUDE = """\
struct data { v : int; }
struct pkt { iso payload : data; }
struct pkt2 { iso payload : data; }
struct box { iso inner : data?; tag : int; }
struct open { kept : data?; tag : int; }
struct cell { other : cell; tag : int; }
struct sl_node { iso payload : data; iso next : sl_node?; }
struct sl { iso hd : sl_node?; }

def mk(n : int) : data { new data(v = n) }

def read1(d : data) : int { d.v }

def sum2(a, b : data) : int { a.v + b.v }

def bump(o : open) : unit { o.tag = o.tag + 1 }

def stash(b : box, d : data) : unit consumes d { b.inner = some(d) }

def keep_one(o : open, d : data) : unit consumes d { o.kept = some(d) }

def sl_push(l : sl, d : data) : unit consumes d {
  let node = new sl_node(payload = d, next = l.hd);
  l.hd = some(node)
}

def sl_pop(l : sl) : data? {
  let some(node) = l.hd in {
    l.hd = node.next;
    some(node.payload)
  } else { none }
}

def chain(n : int) : sl {
  let l = new sl();
  while (n > 0) {
    let d = new data(v = n);
    let node = new sl_node(payload = d, next = l.hd);
    l.hd = some(node);
    n = n - 1
  };
  l
}

def chop(n : sl_node) : data? {
  let some(next) = n.next in {
    if (is_none(next.next)) {
      n.next = none;
      some(next.payload)
    } else { chop(next) }
  } else { none }
}
"""

#: Hop types of a pipeline, in order: thread i sends HOP_TYPES[i] and
#: thread i+1 receives it.
HOP_TYPES = ("data", "pkt", "pkt2")


@dataclass(frozen=True)
class Event:
    """A mutation anchor: something notable the generator did to a data
    variable at a given line of a given function body."""

    kind: str  # "consume" | "create"
    func: str
    line: int  # index into the function's line list
    var: str
    indent: str


@dataclass
class GenFunc:
    name: str
    header: str  # everything before the opening brace
    lines: List[str] = field(default_factory=list)
    result: str = "()"

    def render(self) -> str:
        body = "\n".join(self.lines + [f"  {self.result}"])
        return f"{self.header} {{\n{body}\n}}"


@dataclass
class GenCase:
    """One fuzz case: a program plus how to run it."""

    ident: str
    kind: str  # "pipeline" | "single"
    source: str
    #: (function, int args) per thread, in spawn order.
    spawns: List[Tuple[str, List[int]]]
    #: Mutation applied, None for base (should-accept) cases.
    mutation: Optional[str] = None
    #: Mutation anchors (base cases only).
    events: List[Event] = field(default_factory=list)
    funcs: List[GenFunc] = field(default_factory=list)

    def with_source(self, source: str) -> "GenCase":
        """The same scenario over different program text (used by the
        shrinker; events/funcs no longer correspond and are dropped)."""
        return replace(self, source=source, events=[], funcs=[])


def render_program(funcs: List[GenFunc]) -> str:
    return PRELUDE + "\n" + "\n\n".join(f.render() for f in funcs) + "\n"


class _Body:
    """Generates one function body: tracks which variables of each kind
    are alive so consuming templates retire what they use."""

    def __init__(self, gen: "ProgramGen", func: GenFunc, acc: str):
        self.gen = gen
        self.rng = gen.rng
        self.func = func
        self.acc = acc
        self.datas: List[str] = []
        self.boxes: List[str] = []
        self.opens: List[str] = []
        self.sls: List[str] = []
        self.events: List[Event] = []

    # -- plumbing ----------------------------------------------------------

    def emit(self, text: str, indent: str = "  ") -> int:
        self.func.lines.append(f"{indent}{text}")
        return len(self.func.lines) - 1

    def fresh(self, prefix: str) -> str:
        self.gen.counter += 1
        return f"{prefix}{self.gen.counter}"

    def note(self, kind: str, var: str, line: int, indent: str = "  ") -> None:
        self.events.append(Event(kind, self.func.name, line, var, indent))

    def new_data(self, indent: str = "  ") -> str:
        name = self.fresh("d")
        value = self.rng.randrange(0, 9)
        init = f"mk({value})" if self.rng.random() < 0.3 else f"new data(v = {value})"
        line = self.emit(f"let {name} = {init};", indent)
        if indent == "  ":
            self.datas.append(name)
            self.note("create", name, line, indent)
        return name

    def take_data(self) -> Optional[str]:
        if not self.datas:
            return None
        name = self.rng.choice(self.datas)
        self.datas.remove(name)
        return name

    # -- statement templates ----------------------------------------------

    def stmt(self) -> None:
        """Emit one random top-level statement."""
        template = self.rng.choice(self._TEMPLATES)
        template(self)

    def t_new_data(self) -> None:
        self.new_data()

    def t_new_box(self) -> None:
        name = self.fresh("b")
        self.emit(f"let {name} = new box(tag = {self.rng.randrange(0, 5)});")
        self.boxes.append(name)

    def t_new_open(self) -> None:
        name = self.fresh("o")
        self.emit(f"let {name} = new open(tag = {self.rng.randrange(0, 5)});")
        self.opens.append(name)

    def t_new_sl(self) -> None:
        name = self.fresh("s")
        self.emit(f"let {name} = new sl();")
        self.sls.append(name)

    def t_stash(self) -> None:
        if not self.boxes:
            return self.t_new_box()
        d = self.take_data()
        if d is None:
            return self.t_new_data()
        b = self.rng.choice(self.boxes)
        form = (
            f"stash({b}, {d});"
            if self.rng.random() < 0.5
            else f"{b}.inner = some({d});"
        )
        line = self.emit(form)
        self.note("consume", d, line)

    def t_attach_open(self) -> None:
        if not self.opens:
            return self.t_new_open()
        d = self.take_data()
        if d is None:
            return self.t_new_data()
        o = self.rng.choice(self.opens)
        form = (
            f"keep_one({o}, {d});"
            if self.rng.random() < 0.5
            else f"{o}.kept = some({d});"
        )
        line = self.emit(form)
        self.note("consume", d, line)

    def t_push(self) -> None:
        if not self.sls:
            return self.t_new_sl()
        d = self.take_data()
        if d is None:
            return self.t_new_data()
        s = self.rng.choice(self.sls)
        line = self.emit(f"sl_push({s}, {d});")
        self.note("consume", d, line)

    def t_pop_read(self) -> None:
        if not self.sls:
            return self.t_new_sl()
        s = self.rng.choice(self.sls)
        self.emit(
            f"{self.acc} = {self.acc} + "
            f"(let some(x) = sl_pop({s}) in {{ x.v }} else {{ 0 }});"
        )

    def t_focus_read(self) -> None:
        if not self.boxes:
            return self.t_new_box()
        b = self.rng.choice(self.boxes)
        self.emit(
            f"{self.acc} = {self.acc} + "
            f"(let some(x) = {b}.inner in {{ x.v }} else {{ {b}.tag }});"
        )

    def t_open_read(self) -> None:
        if not self.opens:
            return self.t_new_open()
        o = self.rng.choice(self.opens)
        self.emit(
            f"{self.acc} = {self.acc} + "
            f"(let some(x) = {o}.kept in {{ x.v }} else {{ {o}.tag }});"
        )

    def t_read_data(self) -> None:
        if not self.datas:
            return self.t_new_data()
        d = self.rng.choice(self.datas)
        call = f"read1({d})" if self.rng.random() < 0.4 else f"{d}.v"
        self.emit(f"{self.acc} = {self.acc} + {call};")

    def t_sum2(self) -> None:
        if len(self.datas) < 2:
            return self.t_new_data()
        a, b = self.rng.sample(self.datas, 2)
        self.emit(f"{self.acc} = {self.acc} + sum2({a}, {b});")

    def t_bump(self) -> None:
        if not self.opens:
            return self.t_new_open()
        self.emit(f"bump({self.rng.choice(self.opens)});")

    def t_cells_disconnected(self) -> None:
        a = self.fresh("c")
        b = self.fresh("c")
        self.emit(f"let {a} = new cell(tag = {self.rng.randrange(0, 4)});")
        self.emit(f"let {b} = new cell(tag = {self.rng.randrange(0, 4)});")
        self.emit(f"{a}.other = {b};")
        self.emit(f"if disconnected({a}, {b}) {{")
        self.emit(f"{self.acc} = {self.acc} + 1;", "    ")
        self.emit("} else {")
        self.emit(f"{self.acc} = {self.acc} + 2;", "    ")
        self.emit("};")

    def t_if_acc(self) -> None:
        pivot = self.rng.randrange(0, 6)
        self.emit(f"if ({self.acc} > {pivot}) {{")
        self.emit(f"{self.acc} = {self.acc} + {self.rng.randrange(1, 4)};", "    ")
        self.emit("} else {")
        self.emit(f"{self.acc} = {self.acc} % 97;", "    ")
        self.emit("};")

    def t_while_local(self) -> None:
        i = self.fresh("i")
        self.emit(f"let {i} = {self.rng.randrange(1, 4)};")
        self.emit(f"while ({i} > 0) {{")
        d = self.new_data("    ")
        self.emit(f"{self.acc} = {self.acc} + {d}.v;", "    ")
        self.emit(f"{i} = {i} - 1", "    ")
        self.emit("};")

    def t_chain_chop(self) -> None:
        l = self.fresh("l")
        self.emit(f"let {l} = chain({self.rng.randrange(1, 4)});")
        self.emit(f"let some(h) = {l}.hd in {{")
        self.emit(
            f"{self.acc} = {self.acc} + "
            "(let some(x) = chop(h) in { x.v } else { 0 });",
            "    ",
        )
        self.emit(f"}} else {{ {self.acc} = {self.acc} + 0; }};")

    _TEMPLATES = (
        t_new_data,
        t_new_box,
        t_new_open,
        t_new_sl,
        t_stash,
        t_attach_open,
        t_push,
        t_pop_read,
        t_focus_read,
        t_open_read,
        t_read_data,
        t_read_data,
        t_sum2,
        t_bump,
        t_cells_disconnected,
        t_if_acc,
        t_while_local,
        t_chain_chop,
    )


class ProgramGen:
    """The seeded program factory: ``ProgramGen(random.Random(seed))``
    yields a deterministic case stream via :meth:`generate`."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.counter = 0
        self._serial = 0
        # Bodies of the pipeline being generated (for event harvesting).
        self._bodies: List[Tuple[GenFunc, _Body]] = []

    def generate(self) -> GenCase:
        self.counter = 0
        self._serial += 1
        if self.rng.random() < 0.35:
            return self._single_case()
        return self._pipeline_case()

    # -- shapes -------------------------------------------------------------

    def _single_case(self) -> GenCase:
        func = GenFunc("t_main", "def t_main() : int")
        body = _Body(self, func, "acc")
        body.emit("let acc = 0;")
        for _ in range(self.rng.randrange(3, 10)):
            body.stmt()
        func.result = "acc"
        return GenCase(
            ident=f"g{self._serial}",
            kind="single",
            source=render_program([func]),
            spawns=[("t_main", [])],
            events=body.events,
            funcs=[func],
        )

    def _pipeline_case(self) -> GenCase:
        threads = self.rng.randrange(2, 5)
        items = self.rng.randrange(1, 4)
        hops = list(HOP_TYPES[: threads - 1])
        funcs = [self._source(hops[0], items)]
        for index in range(1, threads - 1):
            funcs.append(
                self._relay(f"t_rly{index}", hops[index - 1], hops[index], items)
            )
        funcs.append(self._sink(hops[-1], items))
        events = [e for f, b in self._bodies for e in b.events]
        return GenCase(
            ident=f"g{self._serial}",
            kind="pipeline",
            source=render_program(funcs),
            spawns=[(f.name, [items]) for f in funcs],
            events=events,
            funcs=funcs,
        )

    def _body(self, func: GenFunc, acc: str) -> _Body:
        body = _Body(self, func, acc)
        if func.name == "t_src":
            self._bodies = []
        self._bodies.append((func, body))
        return body

    def _preamble(self, body: _Body, count: int) -> None:
        for _ in range(self.rng.randrange(0, count + 1)):
            body.stmt()

    def _emit_send(self, body: _Body, var: str, out_ty: str, indent: str) -> None:
        """Send ``var``, wrapping it into the hop's packet type first.
        The wrapper must be let-bound: ``new`` with iso-field initializers
        is only legal directly under a ``let``."""
        if out_ty != "data":
            line = body.emit(f"let w = new {out_ty}(payload = {var});", indent)
            body.note("consume", var, line, indent)
            var = "w"
        line = body.emit(f"send({var});", indent)
        body.note("consume", var, line, indent)

    def _source(self, out_ty: str, items: int) -> GenFunc:
        func = GenFunc("t_src", "def t_src(n : int) : unit")
        body = self._body(func, "acc")
        body.emit("let acc = 0;")
        self._preamble(body, 2)
        if self.rng.random() < 0.5:
            # Unrolled: each send is a distinct mutation anchor.
            for index in range(items):
                d = body.new_data()
                body.datas.remove(d)
                self._emit_send(body, d, out_ty, "  ")
        else:
            body.emit("while (n > 0) {")
            body.emit(f"let d = new data(v = n + {self.rng.randrange(0, 4)});", "    ")
            self._emit_send(body, "d", out_ty, "    ")
            body.emit("n = n - 1", "    ")
            body.emit("};")
        func.result = "()"
        return func

    def _relay(self, name: str, in_ty: str, out_ty: str, items: int) -> GenFunc:
        func = GenFunc(name, f"def {name}(n : int) : unit")
        body = self._body(func, "acc")
        body.emit("let acc = 0;")
        self._preamble(body, 2)
        if self.rng.random() < 0.4:
            # Buffered relay (the queue-corpus shape): drain everything
            # into a local list, then forward.
            body.emit("let buf = new sl();")
            body.emit("let i = n;")
            body.emit("while (i > 0) {")
            body.emit(f"let d = {self._recv_payload(in_ty)};", "    ")
            body.emit("sl_push(buf, d);", "    ")
            body.emit("i = i - 1", "    ")
            body.emit("};")
            body.emit("let j = n;")
            body.emit("while (j > 0) {")
            body.emit("let some(d) = sl_pop(buf) in {", "    ")
            self._emit_send(body, "d", out_ty, "      ")
            body.emit("} else { () };", "    ")
            body.emit("j = j - 1", "    ")
            body.emit("};")
        else:
            body.emit("while (n > 0) {")
            body.emit(f"let d = {self._recv_payload(in_ty)};", "    ")
            if self.rng.random() < 0.5:
                body.emit("acc = acc + d.v;", "    ")
            self._emit_send(body, "d", out_ty, "    ")
            body.emit("n = n - 1", "    ")
            body.emit("};")
        func.result = "()"
        return func

    def _sink(self, in_ty: str, items: int) -> GenFunc:
        func = GenFunc("t_sink", "def t_sink(n : int) : int")
        body = self._body(func, "total")
        body.emit("let total = 0;")
        body.acc = "total"
        self._preamble(body, 2)
        body.emit("while (n > 0) {")
        body.emit(f"let d = {self._recv_payload(in_ty)};", "    ")
        body.emit("total = total + d.v;", "    ")
        body.emit("n = n - 1", "    ")
        body.emit("};")
        func.result = "total"
        return func

    def _recv_payload(self, ty: str) -> str:
        """Receive one hop value and surface its ``data`` payload."""
        if ty == "data":
            return "recv(data)"
        # Focusing the received packet's iso payload is a V1 per item.
        return f"{{ let p = recv({ty}); p.payload }}"


#: Mutation kinds `mutate` can apply, in the order they are attempted.
MUTATIONS = (
    "use-after-consume",
    "double-consume",
    "alias-escape",
    "aliased-args",
)


def mutate(case: GenCase, rng: random.Random) -> Optional[GenCase]:
    """A "should-reject" variant of ``case``: re-use a variable the base
    program consumed (or alias it into a separation violation).  Returns
    None when the case offers no mutation anchor."""
    kind = rng.choice(MUTATIONS)
    if kind == "aliased-args":
        anchors = [e for e in case.events if e.kind == "create"]
    else:
        anchors = [e for e in case.events if e.kind == "consume"]
    if not anchors:
        return None
    anchor = rng.choice(anchors)
    funcs = [GenFunc(f.name, f.header, list(f.lines), f.result) for f in case.funcs]
    func = next(f for f in funcs if f.name == anchor.func)
    pad = anchor.indent
    if kind == "use-after-consume":
        func.lines.insert(anchor.line + 1, f"{pad}read1({anchor.var});")
    elif kind == "double-consume":
        func.lines.insert(anchor.line + 1, func.lines[anchor.line])
    elif kind == "alias-escape":
        func.lines.insert(anchor.line, f"{pad}let zz = {anchor.var};")
        func.lines.insert(anchor.line + 2, f"{pad}read1(zz);")
    elif kind == "aliased-args":
        func.lines.insert(
            anchor.line + 1, f"{pad}sum2({anchor.var}, {anchor.var});"
        )
    return replace(
        case,
        ident=f"{case.ident}-m",
        source=render_program(funcs),
        mutation=kind,
        events=[],
        funcs=funcs,
    )
