"""Differential soundness fuzzing for the FCL stack.

Generates seeded streams of (mostly) well-typed concurrent programs and
cross-checks every layer of the reproduction against every other:
checker vs verifier, static acceptance vs dynamic reservation checks
across many schedules, and guarded vs erased execution traces.  See
``docs/FUZZING.md`` for the user-facing guide and ``repro fuzz --help``
for the CLI.
"""

from .campaign import INJECTABLE_BUGS, SCHEMA, FuzzConfig, run_campaign
from .explore import ExplorationResult, ScheduleOutcome, enumerate_schedules
from .gen import GenCase, MUTATIONS, ProgramGen, mutate
from .oracles import CaseOutcome, OracleConfig, Violation, check_case
from .shrink import ShrinkResult, count_nodes, minimal_schedule, shrink_source

__all__ = [
    "CaseOutcome",
    "ExplorationResult",
    "FuzzConfig",
    "GenCase",
    "INJECTABLE_BUGS",
    "MUTATIONS",
    "OracleConfig",
    "ProgramGen",
    "SCHEMA",
    "ScheduleOutcome",
    "ShrinkResult",
    "Violation",
    "check_case",
    "count_nodes",
    "enumerate_schedules",
    "minimal_schedule",
    "mutate",
    "run_campaign",
    "shrink_source",
]
