"""Bounded-exhaustive schedule enumeration at the Machine level.

The smallstep explorer (:mod:`repro.analysis.schedules`) enumerates
rendezvous pairings over the formal semantics; this module enumerates
*scheduler decisions* over the production :class:`~repro.runtime.machine.
Machine` itself, so the object under test is the very interpreter the
fuzzer's other oracles run.  It drives a :class:`~repro.runtime.machine.
ScriptedScheduler` in probe mode: a run replays a decision prefix and
raises :class:`~repro.runtime.machine.SchedulePoint` at the first choice
the prefix does not cover, at which point the explorer forks one branch
per option (iterative-deepening DFS — each branch restarts the machine
from scratch, which is cheap for fuzzer-sized programs).

Machines are non-preemptive here: between communication events execution
is deterministic, so the decision tree collapses to thread-advance order
plus receiver matching — small enough to exhaust for 2–3 threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..lang import ast
from ..runtime.machine import (
    DeadlockError,
    Machine,
    MachineError,
    ReservationViolation,
    SchedulePoint,
    ScriptedScheduler,
)

#: Outcome kinds, in order of severity.
OK = "ok"
DEADLOCK = "deadlock"
VIOLATION = "violation"


@dataclass
class ScheduleOutcome:
    """One complete schedule: the dense decision sequence that produced it
    and what happened."""

    decisions: Tuple[int, ...]
    kind: str  # ok | deadlock | violation
    results: Optional[Dict[int, Any]] = None
    error: Optional[str] = None


@dataclass
class ExplorationResult:
    outcomes: List[ScheduleOutcome] = field(default_factory=list)
    truncated: bool = False

    @property
    def schedules(self) -> int:
        return len(self.outcomes)

    def violations(self) -> List[ScheduleOutcome]:
        return [o for o in self.outcomes if o.kind == VIOLATION]

    def deadlocks(self) -> List[ScheduleOutcome]:
        return [o for o in self.outcomes if o.kind == DEADLOCK]

    def distinct_results(self) -> List[Dict[int, Any]]:
        """The set of result maps across OK schedules (for the determinism
        oracle: confluent programs must yield exactly one)."""
        seen: List[Dict[int, Any]] = []
        for outcome in self.outcomes:
            if outcome.kind == OK and outcome.results not in seen:
                seen.append(outcome.results)
        return seen


def run_scripted(
    program: ast.Program,
    spawns: List[Tuple[str, List[Any]]],
    decisions: Tuple[int, ...],
    *,
    probe: bool = False,
    check_reservations: bool = True,
) -> Tuple[ScriptedScheduler, ScheduleOutcome]:
    """One machine run under a decision script.  With ``probe=True`` a
    :class:`SchedulePoint` escapes to the caller; otherwise decisions past
    the script's end default to option 0."""
    scheduler = ScriptedScheduler(decisions, probe=probe)
    machine = Machine(
        program,
        check_reservations=check_reservations,
        preemptive=False,
        scheduler=scheduler,
    )
    for name, args in spawns:
        machine.spawn(name, list(args))
    try:
        results = machine.run()
    except ReservationViolation as exc:
        outcome = ScheduleOutcome(
            tuple(scheduler.taken), VIOLATION, error=str(exc)
        )
    except DeadlockError as exc:
        outcome = ScheduleOutcome(
            tuple(scheduler.taken), DEADLOCK, error=str(exc)
        )
    else:
        outcome = ScheduleOutcome(tuple(scheduler.taken), OK, results=results)
    return scheduler, outcome


def enumerate_schedules(
    program: ast.Program,
    spawns: List[Tuple[str, List[Any]]],
    *,
    limit: int = 400,
    check_reservations: bool = True,
) -> ExplorationResult:
    """Exhaust every scheduler decision sequence, up to ``limit`` complete
    schedules (``truncated`` is set when the frontier was not drained)."""
    result = ExplorationResult()
    stack: List[Tuple[int, ...]] = [()]
    while stack:
        if len(result.outcomes) >= limit:
            result.truncated = True
            break
        prefix = stack.pop()
        try:
            _, outcome = run_scripted(
                program,
                spawns,
                prefix,
                probe=True,
                check_reservations=check_reservations,
            )
        except SchedulePoint as point:
            # Fork one branch per option; push in reverse so option 0 is
            # explored first (matches replay-mode defaulting).
            for option in range(point.options - 1, -1, -1):
                stack.append(point.prefix + (option,))
            continue
        except MachineError as exc:
            # Anything else the machine raises is itself a finding; record
            # it as a violation-severity outcome rather than crashing the
            # campaign.
            result.outcomes.append(
                ScheduleOutcome(prefix, VIOLATION, error=f"machine error: {exc}")
            )
            continue
        result.outcomes.append(outcome)
    return result
