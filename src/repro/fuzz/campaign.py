"""The fuzz campaign driver: generate → oracle-check → shrink → report.

:func:`run_campaign` drives a seeded stream of generated programs (plus
mutation-derived should-reject variants) through the differential
oracles in :mod:`repro.fuzz.oracles`, shrinks any disagreement to a
minimal program and schedule, and returns a ``repro-fuzz/1`` JSON report
(the shape ``benchmarks/fuzz.schema.json`` validates).

Fault injection (``inject_bug="send-keeps-region"``) flips the
deliberately unsound :attr:`~repro.core.checker.CheckProfile.
unsound_send_keeps_region` knob so the campaign's own detection path can
be exercised end to end: the doctored checker accepts use-after-send
programs, the verifier refuses the malformed derivation, and the report
carries the shrunk witness.  A campaign with an injected bug is expected
to find violations; one without is expected to find none.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from .. import telemetry as tel
from ..core.checker import CheckProfile, DEFAULT_PROFILE
from ..lang.parser import ParseError, parse_program
from .gen import GenCase, ProgramGen, mutate
from .oracles import (
    ENUMERATE_MAX_THREADS,
    CaseOutcome,
    OracleConfig,
    StaticCheckPool,
    check_case,
)
from .shrink import count_nodes, minimal_schedule, shrink_source

SCHEMA = "repro-fuzz/1"

#: Named checker faults the campaign can inject (``--inject-bug``).
INJECTABLE_BUGS: Dict[str, CheckProfile] = {
    "send-keeps-region": replace(
        DEFAULT_PROFILE, unsound_send_keeps_region=True
    ),
}


@dataclass
class FuzzConfig:
    seed: int = 0
    #: Base cases to generate; each may additionally yield one mutant.
    budget: int = 200
    #: Random schedules per accepted case (oracle 2), on top of the
    #: bounded-exhaustive enumeration for ≤ 3-thread programs.
    schedules: int = 4
    enumerate_limit: int = 120
    fairness_bound: int = 8
    #: Probability of deriving a should-reject mutant from a base case.
    mutate_ratio: float = 0.5
    shrink: bool = True
    max_shrink_evals: int = 300
    #: Stop the campaign once this many violations have been recorded
    #: (None = exhaust the budget regardless).
    stop_after: Optional[int] = None
    inject_bug: Optional[str] = None
    #: Worker processes for the static (checker⇒verifier) oracle; None or
    #: 1 keeps it in-process.  Fixed-seed reports are identical either
    #: way (modulo ``wall_ms``): the generator and mutation RNGs are
    #: independent streams, so with no ``stop_after`` the whole case plan
    #: is derived up front and verdicts are prefetched through the pool,
    #: while with ``stop_after`` set cases go through the pool one at a
    #: time to preserve the early-exit RNG consumption exactly.
    jobs: Optional[int] = None


def run_campaign(config: FuzzConfig = FuzzConfig()) -> Dict[str, Any]:
    """Run one campaign; returns the ``repro-fuzz/1`` report dict."""
    if config.inject_bug is not None and config.inject_bug not in INJECTABLE_BUGS:
        raise ValueError(
            f"unknown injectable bug {config.inject_bug!r} "
            f"(have: {', '.join(sorted(INJECTABLE_BUGS))})"
        )
    profile = (
        INJECTABLE_BUGS[config.inject_bug]
        if config.inject_bug
        else DEFAULT_PROFILE
    )
    # Coverage accounting and fuzz.* counters need a live registry; borrow
    # the caller's if one is enabled, otherwise own a fresh one.
    owned = not tel.registry().enabled
    reg = tel.enable() if owned else tel.registry()
    started = time.time()
    pool: Optional[StaticCheckPool] = None
    try:
        oracle_config = OracleConfig(
            schedules=config.schedules,
            enumerate_limit=config.enumerate_limit,
            fairness_bound=config.fairness_bound,
        )
        if config.jobs is not None and config.jobs > 1:
            pool = StaticCheckPool(config.jobs)
            oracle_config.static_pool = pool
        gen = ProgramGen(random.Random(config.seed))
        mutation_rng = random.Random(config.seed ^ 0x9E3779B9)
        violations: List[Dict[str, Any]] = []
        def done() -> bool:
            return (
                config.stop_after is not None
                and len(violations) >= config.stop_after
            )

        def handle_case(case: GenCase, verdict=None) -> None:
            reg.inc("fuzz.cases")
            outcome = check_case(case, oracle_config, profile, verdict=verdict)
            reg.inc("fuzz.accepted" if outcome.accepted else "fuzz.rejected")
            _harvest(violations, outcome, config, oracle_config, profile, reg)

        def handle_mutant(mutant: GenCase, verdict=None) -> None:
            reg.inc("fuzz.mutants")
            outcome = check_case(mutant, oracle_config, profile, verdict=verdict)
            if outcome.accepted and outcome.violation is None:
                # The checker judged the mutation harmless and every
                # dynamic oracle agreed — a benign mutant, not a finding.
                reg.inc("fuzz.mutants.benign")
            elif not outcome.accepted:
                reg.inc("fuzz.mutants.rejected")
            _harvest(violations, outcome, config, oracle_config, profile, reg)

        if pool is not None and config.stop_after is None:
            # Pipelined mode: with no early exit, ``done()`` is always
            # False, so the per-iteration RNG consumption (one generate,
            # one mutation-gate draw, maybe one mutate) is fixed — the
            # whole plan can be derived up front and static verdicts
            # prefetched through the pool while earlier cases run their
            # dynamic oracles in-process.
            plan = []
            for _ in range(config.budget):
                case = gen.generate()
                mutant = None
                if mutation_rng.random() < config.mutate_ratio:
                    mutant = mutate(case, mutation_rng)
                plan.append(
                    (
                        case,
                        pool.submit(case.source, profile),
                        mutant,
                        pool.submit(mutant.source, profile)
                        if mutant is not None
                        else None,
                    )
                )
            for case, future, mutant, mutant_future in plan:
                handle_case(case, verdict=future.result())
                if mutant is not None:
                    handle_mutant(mutant, verdict=mutant_future.result())
        else:
            # Serial shape (also used with a pool when --stop-after is
            # set: the short-circuit in the mutation gate below must see
            # exactly the serial violation counts).
            for _ in range(config.budget):
                if done():
                    break
                case = gen.generate()
                handle_case(case)
                if done() or mutation_rng.random() >= config.mutate_ratio:
                    continue
                mutant = mutate(case, mutation_rng)
                if mutant is None:
                    continue
                handle_mutant(mutant)
        report = {
            "schema": SCHEMA,
            "seed": config.seed,
            "budget": config.budget,
            "injected_bug": config.inject_bug,
            "wall_ms": int((time.time() - started) * 1000),
            "cases": {
                "generated": reg.value("fuzz.cases"),
                "accepted": reg.value("fuzz.accepted"),
                "rejected": reg.value("fuzz.rejected"),
                "mutants": reg.value("fuzz.mutants"),
                "mutants_benign": reg.value("fuzz.mutants.benign"),
                "mutants_rejected": reg.value("fuzz.mutants.rejected"),
            },
            "schedules": {
                "random": reg.value("fuzz.schedules.random"),
                "enumerated": reg.value("fuzz.schedules.enumerated"),
            },
            # Execution engines the differential oracles cross-checked,
            # and the optimization tiers the ir legs exercised: checked
            # (guarded, traced) and full (erased, traced — the PR-9
            # event-preserving rewrites under a tracer).
            "engines": ["tree", "ir"],
            "tiers": ["checked", "full+traced"],
            "coverage": {
                rule: reg.value(f"checker.vt.{rule}")
                for rule in (
                    "V1-Focus",
                    "V2-Unfocus",
                    "V3-Explore",
                    "V4-Retract",
                    "V5-Attach",
                )
            },
            "violations": violations,
            "clean": not violations,
        }
        return report
    finally:
        if pool is not None:
            pool.close()
        if owned:
            tel.disable()


def _harvest(
    violations: List[Dict[str, Any]],
    outcome: CaseOutcome,
    config: FuzzConfig,
    oracle_config: OracleConfig,
    profile: CheckProfile,
    reg,
) -> None:
    """Record (and shrink) one oracle disagreement, if any."""
    violation = outcome.violation
    if violation is None:
        return
    reg.inc("fuzz.violations")
    case = outcome.case
    entry: Dict[str, Any] = {
        "case": case.ident,
        "kind": case.kind,
        "mutation": case.mutation,
        "oracle": violation.oracle,
        "detail": violation.detail,
        "schedule": violation.schedule,
        "spawns": [[name, list(args)] for name, args in case.spawns],
        "source": case.source,
        "shrunk": None,
    }
    if config.shrink:
        entry["shrunk"] = _shrink(case, violation.oracle, config,
                                  oracle_config, profile, reg)
    violations.append(entry)


def _shrink(
    case: GenCase,
    oracle: str,
    config: FuzzConfig,
    oracle_config: OracleConfig,
    profile: CheckProfile,
    reg,
) -> Optional[Dict[str, Any]]:
    def reproduces(source: str) -> bool:
        outcome = check_case(case.with_source(source), oracle_config, profile)
        return (
            outcome.violation is not None
            and outcome.violation.oracle == oracle
        )

    result = shrink_source(
        case.source, reproduces, max_evals=config.max_shrink_evals
    )
    reg.inc("fuzz.shrink.cases")
    reg.inc("fuzz.shrink.evals", result.evals)
    shrunk: Dict[str, Any] = {
        "source": result.source,
        "nodes": result.nodes,
        "evals": result.evals,
        "schedule": None,
    }
    if oracle in ("schedule", "deadlock") and len(case.spawns) <= ENUMERATE_MAX_THREADS:
        try:
            program = parse_program(result.source)
        except ParseError:
            program = None
        if program is not None:
            decisions = minimal_schedule(
                program, case.spawns, oracle, limit=oracle_config.enumerate_limit
            )
            if decisions is not None:
                shrunk["schedule"] = decisions
    return shrunk
