"""Greedy structural shrinking of failing fuzz cases.

Once an oracle disagrees, the raw generated program is noise: most of its
statements are irrelevant to the failure.  The shrinker repeatedly tries
structural reductions — drop a whole function, drop a struct, delete one
block entry, replace a compound statement (``if``/``let some``/``while``/
``if disconnected``) with one of its sub-blocks — and keeps any reduction
for which the *same oracle kind* still fires (first-improvement greedy
descent to a fixed point, bounded by ``max_evals`` predicate runs).

Size is measured in AST nodes over function bodies
(:func:`count_nodes`), the metric the campaign reports and the
acceptance criterion ("shrunk to ≤ 15 nodes") is stated in.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..lang import ast
from ..lang.parser import ParseError, parse_program
from ..lang.pretty import pretty_program


def count_nodes(program: ast.Program) -> int:
    """AST nodes across all function bodies (struct decls excluded)."""
    return sum(len(ast.walk(f.body)) for f in program.funcs.values())


@dataclass
class ShrinkResult:
    source: str
    nodes: int
    evals: int  # predicate evaluations spent
    reduced: bool  # did any reduction stick?


def _blocks(expr: ast.Expr) -> List[ast.Block]:
    """All Blocks under ``expr`` in pre-order (including ``expr`` itself
    when it is one)."""
    return [node for node in ast.walk(expr) if isinstance(node, ast.Block)]


def _reductions(program: ast.Program) -> Iterator[ast.Program]:
    """Candidate smaller programs, most aggressive first.  Each candidate
    is an independent deep copy."""
    # Drop one function entirely (callers/spawns of it will simply fail
    # the predicate, which rejects the candidate).
    for name in list(program.funcs):
        candidate = copy.deepcopy(program)
        del candidate.funcs[name]
        if candidate.funcs:
            yield candidate

    # Drop one struct (again, the predicate arbitrates).
    for name in list(program.structs):
        candidate = copy.deepcopy(program)
        del candidate.structs[name]
        yield candidate

    # Per-function block surgery.  Indexing is positional over the
    # pre-order block list, re-resolved inside each fresh copy.
    for fname, fdef in program.funcs.items():
        blocks = _blocks(fdef.body)
        for b_index, block in enumerate(blocks):
            for e_index, entry in enumerate(block.body):
                # Delete the entry outright.
                candidate = copy.deepcopy(program)
                target = _blocks(candidate.funcs[fname].body)[b_index]
                del target.body[e_index]
                yield candidate
                # Replace a compound entry with one of its sub-blocks.
                for sub in range(len(_sub_blocks(entry))):
                    candidate = copy.deepcopy(program)
                    target = _blocks(candidate.funcs[fname].body)[b_index]
                    replacement = _sub_blocks(target.body[e_index])[sub]
                    target.body[e_index] = replacement
                    yield candidate


def _sub_blocks(entry: ast.Expr) -> List[ast.Block]:
    if isinstance(entry, (ast.If, ast.LetSome, ast.IfDisconnected)):
        subs = [entry.then_block]
        if entry.else_block is not None:
            subs.append(entry.else_block)
        return subs
    if isinstance(entry, ast.While):
        return [entry.body]
    return []


def shrink_source(
    source: str,
    reproduces: Callable[[str], bool],
    max_evals: int = 300,
) -> ShrinkResult:
    """Shrink ``source`` while ``reproduces`` keeps returning True on the
    candidate text.  ``reproduces`` must be meaningful on arbitrary
    reductions (reject-by-any-means candidates are its problem to veto)."""
    try:
        best = parse_program(source)
    except ParseError:
        return ShrinkResult(source, -1, 0, False)
    evals = 0
    reduced = False
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _reductions(best):
            if evals >= max_evals:
                break
            evals += 1
            if reproduces(pretty_program(candidate)):
                best = candidate
                reduced = True
                improved = True
                break  # restart the scan from the smaller program
    return ShrinkResult(pretty_program(best), count_nodes(best), evals, reduced)


def minimal_schedule(
    program: ast.Program,
    spawns: List[Tuple[str, List[int]]],
    oracle: str,
    limit: int = 200,
) -> Optional[List[int]]:
    """The shortest failing decision sequence for a shrunk program, when
    schedule enumeration can find one (``oracle`` is "schedule" or
    "deadlock")."""
    from .explore import enumerate_schedules

    report = enumerate_schedules(program, spawns, limit=limit)
    matching = (
        report.violations() if oracle == "schedule" else report.deadlocks()
    )
    if not matching:
        return None
    return list(min(matching, key=lambda o: len(o.decisions)).decisions)
