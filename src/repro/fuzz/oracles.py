"""The differential oracles: what the fuzzer asserts about each case.

A generated (or mutated) program is pushed through the full stack and the
layers are made to disagree-check each other:

1. **prover/verifier** — whatever the checker accepts, the independent
   verifier must accept too (`checker.check_program()` derivation replayed
   through `Verifier.verify_program`).  Whatever the checker rejects must
   be rejected with a *usable* diagnostic (a source span inside the
   program, renderable by :func:`repro.lang.diagnostics.render_diagnostic`).
2. **static/dynamic** — an accepted program run with reservation checks on
   must never raise a :class:`ReservationViolation` or deadlock, on any
   schedule: ``schedules`` seeded random schedules (alternating the plain
   and fairness-bounded policies) plus bounded-exhaustive enumeration of
   all scheduler decisions for programs of ≤ 3 threads.  All schedules
   must agree on the result map (pipelines are confluent by construction).
3. **guarded/erased** — a guarded run and an `--erased` run replayed over
   the *same* schedule must produce byte-identical heap traces and equal
   results (the reservation machinery must be observationally free).
4. **tree/ir** — the tree-walking interpreter and the compiled bytecode
   engine (``--engine ir``), each under the canonical first-option
   schedule, must produce byte-identical heap traces and equal results;
   an additional erased-ir leg (the full optimization tier) must agree on
   the result map.

Any disagreement is a :class:`Violation`; the campaign driver shrinks it
and writes a ``repro-fuzz/1`` report entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry as tel
from ..core.checker import Checker, CheckProfile, DEFAULT_PROFILE
from ..core.errors import TypeError_
from ..lang import ast
from ..lang.diagnostics import render_diagnostic
from ..lang.parser import ParseError, parse_program
from ..runtime.machine import (
    DeadlockError,
    FairRandomScheduler,
    Machine,
    MachineError,
    RandomScheduler,
    ReservationViolation,
    ScriptedScheduler,
)
from ..runtime.trace import Tracer
from ..verifier.verifier import VerificationError, Verifier
from .explore import enumerate_schedules, run_scripted
from .gen import GenCase

#: Threads at or below this spawn count get bounded-exhaustive schedule
#: enumeration on top of the random schedules.
ENUMERATE_MAX_THREADS = 3


@dataclass
class Violation:
    """One oracle disagreement."""

    oracle: str  # verifier | diagnostic | checker-crash | schedule |
    #            deadlock | determinism | erasure | engine | runtime-crash |
    #            generator
    detail: str
    #: How to reproduce the failing schedule, when one is implicated:
    #: ``{"kind": "seed", "value": 3}`` or ``{"kind": "decisions",
    #: "value": [1, 0, 2]}``.
    schedule: Optional[Dict[str, Any]] = None


@dataclass
class CaseOutcome:
    case: GenCase
    accepted: bool = False
    violation: Optional[Violation] = None
    #: Result map of the canonical schedule (accepted, ran cases).
    results: Optional[Dict[int, Any]] = None


@dataclass
class OracleConfig:
    """Runtime-oracle knobs (see :class:`repro.fuzz.campaign.FuzzConfig`)."""

    schedules: int = 4
    enumerate_limit: int = 120
    fairness_bound: int = 8
    #: When set, the static (checker⇒verifier) oracle runs in this pool's
    #: worker processes instead of in-process.  The dynamic oracles always
    #: run in-process — they need the Machine, tracers, and schedule
    #: enumeration state, which don't cross process boundaries.
    static_pool: Optional["StaticCheckPool"] = None


class StaticCheckPool:
    """Routes the checker⇒verifier oracle through the pipeline's worker
    pool (:func:`repro.pipeline.worker.check_verify_program_task`).

    Verdicts are plain dicts with byte-for-byte the same semantics as the
    in-process oracle, and carry the worker's telemetry document so the
    campaign's coverage counters (``checker.vt.*``) stay truthful under
    ``--jobs``."""

    def __init__(self, jobs: Optional[int] = None):
        import os

        self.jobs = jobs if jobs and jobs > 0 else (os.cpu_count() or 1)
        self._executor = None

    def _handle(self):
        if self._executor is None:
            from concurrent.futures import ProcessPoolExecutor

            from ..pipeline.worker import init_worker

            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=init_worker
            )
        return self._executor

    def submit(self, source: str, profile: CheckProfile):
        """Future of a static-oracle verdict dict for one program."""
        from ..pipeline.worker import check_verify_program_task

        task = {
            "source": source,
            "profile": profile,
            "collect": tel.registry().enabled,
        }
        return self._handle().submit(check_verify_program_task, task)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "StaticCheckPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _apply_verdict(case: GenCase, verdict: Dict[str, Any]):
    """Map a remote static-oracle verdict onto the exact (violation,
    accepted) pair the in-process oracle would have produced."""
    reg = tel.registry()
    doc = verdict.get("doc")
    if doc is not None and reg.enabled:
        tel.merge_doc(reg, doc)
    status = verdict["status"]
    if status == "ok":
        return None, True
    if status == "verifier":
        return Violation("verifier", verdict["message"]), True
    if status == "parse":
        return (
            Violation(
                "generator",
                f"generated program does not parse: {verdict['message']}",
            ),
            False,
        )
    if status == "type":
        from ..core import errors as _errors
        from ..pipeline.worker import span_from_tuple

        klass = getattr(_errors, verdict["cls"], TypeError_)
        if not (isinstance(klass, type) and issubclass(klass, TypeError_)):
            klass = TypeError_
        exc = klass(verdict["message"], span_from_tuple(verdict["span"]))
        return _bad_diagnostic(case, exc), False
    # status == "crash"
    return (
        Violation(
            "checker-crash", f"{verdict['cls']}: {verdict['message']}"
        ),
        False,
    )


def check_case(
    case: GenCase,
    config: OracleConfig = OracleConfig(),
    profile: CheckProfile = DEFAULT_PROFILE,
    verdict: Optional[Dict[str, Any]] = None,
) -> CaseOutcome:
    """Run every oracle against one case; first disagreement wins.

    ``verdict`` short-circuits the static oracle with a prefetched result
    from :class:`StaticCheckPool` (the campaign's pipelined mode); absent
    that, ``config.static_pool`` is consulted synchronously, and absent
    that too the prover and verifier run in-process.
    """
    outcome = CaseOutcome(case)
    try:
        program = parse_program(case.source)
    except ParseError as exc:
        outcome.violation = Violation(
            "generator", f"generated program does not parse: {exc}"
        )
        return outcome
    if any(name not in program.funcs for name, _ in case.spawns):
        # Only reachable through shrinking (a reduction dropped a spawned
        # function): treat as a clean rejection so the predicate vetoes it.
        return outcome

    # Oracle 1: prover vs verifier (and diagnostic quality on rejection).
    if verdict is not None or config.static_pool is not None:
        if verdict is None:
            verdict = config.static_pool.submit(case.source, profile).result()
        violation, accepted = _apply_verdict(case, verdict)
        outcome.accepted = accepted
        if violation is not None:
            outcome.violation = violation
            return outcome
        if not accepted:
            return outcome
    else:
        try:
            derivation = Checker(program, profile=profile).check_program()
        except TypeError_ as exc:
            outcome.violation = _bad_diagnostic(case, exc)
            return outcome
        except Exception as exc:  # noqa: BLE001 — crashes are findings
            outcome.violation = Violation(
                "checker-crash", f"{type(exc).__name__}: {exc}"
            )
            return outcome
        outcome.accepted = True
        try:
            Verifier(program).verify_program(derivation)
        except VerificationError as exc:
            outcome.violation = Violation("verifier", str(exc))
            return outcome

    # Oracle 2: no reservation violation / deadlock on any schedule, and
    # one confluent result.
    baseline: Optional[Dict[int, Any]] = None
    for index in range(config.schedules):
        if index % 2 == 0:
            scheduler = RandomScheduler(index)
        else:
            scheduler = FairRandomScheduler(
                index, fairness_bound=config.fairness_bound
            )
        tel.registry().inc("fuzz.schedules.random")
        violation, results = _run_once(program, case.spawns, scheduler)
        if violation is not None:
            violation.schedule = {"kind": "seed", "value": index}
            outcome.violation = violation
            return outcome
        if baseline is None:
            baseline = results
        elif results != baseline:
            outcome.violation = Violation(
                "determinism",
                f"results differ across schedules: {baseline!r} vs {results!r}",
                schedule={"kind": "seed", "value": index},
            )
            return outcome
    if len(case.spawns) <= ENUMERATE_MAX_THREADS:
        report = enumerate_schedules(
            program, case.spawns, limit=config.enumerate_limit
        )
        tel.registry().inc("fuzz.schedules.enumerated", report.schedules)
        for bad in report.violations():
            outcome.violation = Violation(
                "schedule",
                bad.error or "reservation violation",
                schedule={"kind": "decisions", "value": list(bad.decisions)},
            )
            return outcome
        for dead in report.deadlocks():
            outcome.violation = Violation(
                "deadlock",
                dead.error or "deadlock",
                schedule={"kind": "decisions", "value": list(dead.decisions)},
            )
            return outcome
        distinct = report.distinct_results()
        if baseline is not None and distinct and distinct != [baseline]:
            outcome.violation = Violation(
                "determinism",
                f"enumerated results {distinct!r} != random-schedule "
                f"baseline {baseline!r}",
                schedule={"kind": "decisions", "value": []},
            )
            return outcome

    # Oracle 3: guarded and erased runs over the same schedule must have
    # byte-identical heap traces and equal results.
    outcome.violation, outcome.results = _erasure_oracle(program, case.spawns)
    if outcome.violation is not None:
        return outcome

    # Oracle 4: the compiled bytecode engine must be observationally
    # indistinguishable from the tree interpreter.
    outcome.violation = _engine_oracle(program, case.spawns)
    return outcome


def _bad_diagnostic(case: GenCase, exc: TypeError_) -> Optional[Violation]:
    """Rejections are fine; rejections that can't point at the program are
    a diagnostics bug (satellite d: every rejection carries a stable
    ``line:col``)."""
    span = exc.span
    if span is None or not span.line:
        return Violation(
            "diagnostic", f"rejection without a source span: {exc}"
        )
    nlines = len(case.source.splitlines())
    if not 1 <= span.line <= nlines:
        return Violation(
            "diagnostic",
            f"rejection span line {span.line} outside program "
            f"(1..{nlines}): {exc}",
        )
    rendered = render_diagnostic(case.source, span, exc.message)
    if f":{span.line}:{span.column}:" not in rendered.splitlines()[0]:
        return Violation(
            "diagnostic", f"rendered diagnostic lost its location: {rendered!r}"
        )
    return None


def _run_once(
    program: ast.Program,
    spawns: List[Tuple[str, List[Any]]],
    scheduler,
    *,
    check_reservations: bool = True,
    tracer: Optional[Tracer] = None,
    engine: str = "tree",
) -> Tuple[Optional[Violation], Optional[Dict[int, Any]]]:
    machine = Machine(
        program,
        check_reservations=check_reservations,
        scheduler=scheduler,
        tracer=tracer,
        engine=engine,
    )
    for name, args in spawns:
        machine.spawn(name, list(args))
    try:
        return None, machine.run()
    except ReservationViolation as exc:
        return Violation("schedule", str(exc)), None
    except DeadlockError as exc:
        return Violation("deadlock", str(exc)), None
    except MachineError as exc:
        return Violation("runtime-crash", f"{type(exc).__name__}: {exc}"), None
    except Exception as exc:  # noqa: BLE001 — interpreter crashes are findings
        return Violation("runtime-crash", f"{type(exc).__name__}: {exc}"), None


def _erasure_oracle(
    program: ast.Program, spawns: List[Tuple[str, List[Any]]]
) -> Tuple[Optional[Violation], Optional[Dict[int, Any]]]:
    """Guarded vs erased over the canonical (all-first-option) schedule."""
    guarded_tracer = Tracer()
    guarded_sched = ScriptedScheduler()
    violation, guarded = _run_once(
        program, spawns, guarded_sched, tracer=guarded_tracer
    )
    if violation is not None:
        violation.schedule = {"kind": "decisions", "value": []}
        return violation, None
    erased_tracer = Tracer()
    erased_sched = ScriptedScheduler(guarded_sched.taken)
    violation, erased = _run_once(
        program,
        spawns,
        erased_sched,
        check_reservations=False,
        tracer=erased_tracer,
    )
    schedule = {"kind": "decisions", "value": list(guarded_sched.taken)}
    if violation is not None:
        violation.oracle = "erasure"
        violation.detail = f"erased run failed: {violation.detail}"
        violation.schedule = schedule
        return violation, None
    guarded_bytes = json.dumps(list(guarded_tracer.to_dicts()), sort_keys=True)
    erased_bytes = json.dumps(list(erased_tracer.to_dicts()), sort_keys=True)
    if guarded_bytes != erased_bytes:
        detail = _first_divergence(guarded_tracer, erased_tracer)
        return (
            Violation("erasure", f"trace divergence: {detail}", schedule),
            None,
        )
    if guarded != erased:
        return (
            Violation(
                "erasure",
                f"result divergence: guarded {guarded!r} vs erased {erased!r}",
                schedule,
            ),
            None,
        )
    return None, guarded


def _engine_oracle(
    program: ast.Program, spawns: List[Tuple[str, List[Any]]]
) -> Optional[Violation]:
    """Tree interpreter vs bytecode engine over the canonical schedule.

    Both engines run guarded with a fresh first-option scheduler (the
    canonical schedule is yield-granularity-independent, so the decision
    lists need not match) and must produce byte-identical heap traces and
    equal results.  The erased-ir leg runs **traced** — since PR 9 a
    tracer no longer disables the full optimization tier, so this is the
    full tier (mem2var, LICM, global RLE, tail-call loops) under
    observation: its trace must stay byte-identical to the guarded tree
    trace (erasure oracle 3 already pins guarded ≡ erased for the tree
    engine) and its results equal."""
    tree_tracer = Tracer()
    violation, tree = _run_once(
        program, spawns, ScriptedScheduler(), tracer=tree_tracer
    )
    if violation is not None:
        violation.schedule = {"kind": "decisions", "value": []}
        return violation
    schedule = {"kind": "decisions", "value": []}
    ir_tracer = Tracer()
    violation, ir_results = _run_once(
        program, spawns, ScriptedScheduler(), tracer=ir_tracer, engine="ir"
    )
    if violation is not None:
        violation.oracle = "engine"
        violation.detail = f"ir run failed: {violation.detail}"
        violation.schedule = schedule
        return violation
    tree_bytes = json.dumps(list(tree_tracer.to_dicts()), sort_keys=True)
    ir_bytes = json.dumps(list(ir_tracer.to_dicts()), sort_keys=True)
    if tree_bytes != ir_bytes:
        detail = _first_divergence(tree_tracer, ir_tracer, ("tree", "ir"))
        return Violation("engine", f"trace divergence: {detail}", schedule)
    if tree != ir_results:
        return Violation(
            "engine",
            f"result divergence: tree {tree!r} vs ir {ir_results!r}",
            schedule,
        )
    erased_tracer = Tracer()
    violation, ir_erased = _run_once(
        program, spawns, ScriptedScheduler(),
        check_reservations=False, tracer=erased_tracer, engine="ir",
    )
    if violation is not None:
        violation.oracle = "engine"
        violation.detail = f"traced full-tier ir run failed: {violation.detail}"
        violation.schedule = schedule
        return violation
    erased_bytes = json.dumps(list(erased_tracer.to_dicts()), sort_keys=True)
    if tree_bytes != erased_bytes:
        detail = _first_divergence(
            tree_tracer, erased_tracer, ("tree", "full-tier ir")
        )
        return Violation(
            "engine", f"full-tier trace divergence: {detail}", schedule
        )
    if ir_erased != tree:
        return Violation(
            "engine",
            f"erased-ir result divergence: tree {tree!r} vs ir {ir_erased!r}",
            schedule,
        )
    return None


def _first_divergence(
    left: Tracer, right: Tracer, names: Tuple[str, str] = ("guarded", "erased")
) -> str:
    lefts = list(left.to_dicts())
    rights = list(right.to_dicts())
    lname, rname = names
    for index, (a, b) in enumerate(zip(lefts, rights)):
        if a != b:
            return f"event {index}: {lname} {a!r} vs {rname} {b!r}"
    return (
        f"trace lengths differ: {lname} {len(lefts)} vs {rname} {len(rights)}"
    )
