"""Serve-fleet load harness (``repro bench --serve-load``).

Closed-loop load generation against live servers: N client threads, each
with its own socket connection, each working through a deterministic
check/verify/run mix of *distinct* programs (distinct sources defeat the
result memo, so every request is real checking work — the GIL contention
the fleet exists to escape).  Four phases, one ``serve_load`` document:

* **throughput** — the same mix against a single-process daemon, a
  one-worker fleet, and an N-worker fleet; per-request p50/p99 latency
  and saturation throughput.  The acceptance bar: the N-worker fleet
  strictly out-throughputs the single process on the check-heavy mix.
* **overload** — a one-worker fleet with a two-slot queue under many
  concurrent slow requests: every refusal must be a clean ``overloaded``
  envelope (zero internal errors, zero timeouts, zero hangs).
* **drain** — shutdown mid-load: everything admitted before the drain
  completes with a real result.
* **cache** — a fleet over one shared certificate store: cold misses,
  then a warm phase (same sources, fresh filenames — busts the
  per-worker memo, not the content-addressed store) whose hit ratio must
  clear 90%, then a capped store where eviction provably kicks in.

Latency numbers are wall-clock through the full stack (client framing,
socket, acceptor admission, worker pipe, check, reply), which is what a
caller actually experiences.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .client import Client, RemoteError

#: Deterministic 20-slot request mix (16 check / 3 verify / 1 run).
MIX = ("check",) * 16 + ("verify",) * 3 + ("run",)


def _mix_source(i: int) -> str:
    """Distinct-by-index programs: same checking cost, different hash."""
    return (
        "struct data { v : int; }\n"
        f"def get_{i}(d : data) : int {{ d.v + {i} }}\n"
        f"def add_{i}(a : int, b : int) : int {{ a + b + {i} }}\n"
    )


SPIN = """
def spin(n : int) : int {
  let x = 0;
  while (n > 0) {
    x = x + 1;
    n = n - 1
  };
  x
}
"""


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _unix_config(**kwargs):
    from .server import ServerConfig

    return ServerConfig(
        host=None, unix_path=tempfile.mktemp(suffix=".sock"), **kwargs
    )


def _wait_for(predicate, timeout: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


# ---------------------------------------------------------------------------
# Closed-loop driver
# ---------------------------------------------------------------------------


def _drive_mix(
    address, clients: int, requests_each: int
) -> Dict[str, Any]:
    """``clients`` threads, each its own connection, each issuing
    ``requests_each`` mixed requests over distinct sources.  Returns
    aggregate latency/throughput/error counts.  The wall clock starts at
    a barrier *after* every client has connected, so connection setup is
    not billed as request latency."""
    barrier = threading.Barrier(clients + 1)
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[Dict[str, int]] = [{} for _ in range(clients)]

    def one_client(c: int) -> None:
        with Client(address, timeout=120) as client:
            barrier.wait(timeout=60)
            for r in range(requests_each):
                index = c * requests_each + r
                method = MIX[index % len(MIX)]
                source = _mix_source(index)
                t0 = time.perf_counter()
                try:
                    if method == "check":
                        client.check(source, filename=f"m{index}.fcl")
                    elif method == "verify":
                        client.verify(source, filename=f"m{index}.fcl")
                    else:
                        client.run(source, f"add_{index}", [1, 2])
                except RemoteError as exc:
                    errors[c][exc.code] = errors[c].get(exc.code, 0) + 1
                latencies[c].append((time.perf_counter() - t0) * 1000.0)

    threads = [
        threading.Thread(target=one_client, args=(c,), daemon=True)
        for c in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait(timeout=120)
    t0 = time.perf_counter()
    for t in threads:
        t.join(timeout=600)
    wall_s = time.perf_counter() - t0
    hung = sum(1 for t in threads if t.is_alive())
    flat = [sample for per_client in latencies for sample in per_client]
    merged_errors: Dict[str, int] = {}
    for per_client in errors:
        for code, count in per_client.items():
            merged_errors[code] = merged_errors.get(code, 0) + count
    total = clients * requests_each
    return {
        "clients": clients,
        "requests": total,
        "wall_ms": round(wall_s * 1000.0, 1),
        "throughput_rps": round(total / wall_s, 1) if wall_s else 0.0,
        "p50_ms": round(_percentile(flat, 0.50), 2),
        "p99_ms": round(_percentile(flat, 0.99), 2),
        "max_ms": round(max(flat), 2) if flat else 0.0,
        "errors": merged_errors,
        "hung_clients": hung,
    }


# ---------------------------------------------------------------------------
# Phases
# ---------------------------------------------------------------------------


def _phase_throughput(
    clients: int, requests_each: int, fleet_workers: int
) -> List[Dict[str, Any]]:
    from .server import ServerThread
    from .server.fleet import FleetConfig, FleetThread

    targets: List[Tuple[str, Any]] = [
        ("single-process", lambda: ServerThread(_unix_config(max_queue=512))),
        (
            "fleet-1",
            lambda: FleetThread(
                config=_unix_config(max_queue=512),
                fleet_config=FleetConfig(workers=1),
            ),
        ),
        (
            f"fleet-{fleet_workers}",
            lambda: FleetThread(
                config=_unix_config(max_queue=512),
                fleet_config=FleetConfig(workers=fleet_workers),
            ),
        ),
    ]
    rows = []
    for label, make in targets:
        with make() as handle:
            row = _drive_mix(handle.address, clients, requests_each)
        row["target"] = label
        row["workers"] = (
            fleet_workers
            if label == f"fleet-{fleet_workers}"
            else (1 if label == "fleet-1" else 0)
        )
        rows.append(row)
    return rows


def _phase_overload(clients: int) -> Dict[str, Any]:
    """Slow spins against one worker and a two-slot queue: refusals must
    be ``overloaded`` and nothing else; nobody hangs or crashes."""
    from .server.fleet import FleetConfig, FleetThread

    requests_each = 3
    counts = {"ok": 0, "overloaded": 0, "other": 0}
    lock = threading.Lock()

    def one_client(c: int) -> None:
        with Client(handle.address, timeout=120) as client:
            for _ in range(requests_each):
                try:
                    result = client.run(SPIN, "spin", [30_000])
                    with lock:
                        counts["ok"] += 1 if result.ok else 0
                except RemoteError as exc:
                    with lock:
                        key = (
                            "overloaded"
                            if exc.code == "overloaded"
                            else "other"
                        )
                        counts[key] += 1

    with FleetThread(
        config=_unix_config(max_queue=2),
        fleet_config=FleetConfig(workers=1),
    ) as handle:
        threads = [
            threading.Thread(target=one_client, args=(c,), daemon=True)
            for c in range(clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        hung = sum(1 for t in threads if t.is_alive())
        with Client(handle.address) as probe:
            stats = probe.stats()
            crashes = stats["requests"].get("server.worker.crashes", 0)
            restarts = stats["fleet"]["restarts"]
    return {
        "clients": clients,
        "sent": clients * requests_each,
        "ok": counts["ok"],
        "overloaded": counts["overloaded"],
        "other_errors": counts["other"],
        "hung_clients": hung,
        "worker_crashes": crashes,
        "worker_restarts": restarts,
    }


def _phase_drain(inflight: int = 4) -> Dict[str, Any]:
    """Drain with slow requests in flight: all of them must complete."""
    from .server.fleet import FleetConfig, FleetThread

    results = {"completed": 0, "failed": 0}
    lock = threading.Lock()

    def slow(address) -> None:
        try:
            result = Client(address, timeout=120).run(SPIN, "spin", [100_000])
            with lock:
                results["completed" if result.ok else "failed"] += 1
        except Exception:  # noqa: BLE001 — a drop IS the failure signal
            with lock:
                results["failed"] += 1

    handle = FleetThread(
        config=_unix_config(max_queue=512),
        fleet_config=FleetConfig(workers=2),
    ).start()
    address = handle.address
    threads = [
        threading.Thread(target=slow, args=(address,), daemon=True)
        for _ in range(inflight)
    ]
    for t in threads:
        t.start()
    with Client(address) as control:
        _wait_for(lambda: control.stats()["inflight"] >= 1)
        observed = control.stats()["inflight"]
        control.shutdown()
    for t in threads:
        t.join(timeout=300)
    handle.stop()
    return {
        "submitted": inflight,
        "inflight_at_shutdown": observed,
        "completed": results["completed"],
        "failed": results["failed"],
    }


def _phase_cache(sources: int, warm_passes: int) -> Dict[str, Any]:
    """Shared-store behavior: cold fill, warm hit ratio, forced eviction."""
    from .server.fleet import FleetConfig, FleetThread

    def counters(client) -> Dict[str, float]:
        return client.metrics().get("counters", {})

    with tempfile.TemporaryDirectory() as cache_dir:
        with FleetThread(
            config=_unix_config(max_queue=512),
            fleet_config=FleetConfig(workers=2, cache_dir=cache_dir),
        ) as handle:
            with Client(handle.address, timeout=120) as client:
                for i in range(sources):
                    assert client.verify(
                        _mix_source(i), filename=f"cold-{i}.fcl"
                    ).ok
                before = counters(client)
                for p in range(warm_passes):
                    for i in range(sources):
                        # Fresh filename: busts the per-worker result
                        # memo (keyed on filename); the content-addressed
                        # store must answer instead.
                        assert client.verify(
                            _mix_source(i), filename=f"warm-{p}-{i}.fcl"
                        ).ok
                after = counters(client)
        hits = after.get("cache.hits", 0) - before.get("cache.hits", 0)
        misses = after.get("cache.misses", 0) - before.get("cache.misses", 0)
        looked_up = hits + misses
        warm = {
            "requests": sources * warm_passes,
            "hits": int(hits),
            "misses": int(misses),
            "hit_ratio": round(hits / looked_up, 4) if looked_up else 0.0,
        }

    # Eviction leg: a store capped far below the working set.
    cap = max(4, sources // 3)
    with tempfile.TemporaryDirectory() as cache_dir:
        with FleetThread(
            config=_unix_config(max_queue=512),
            fleet_config=FleetConfig(
                workers=2, cache_dir=cache_dir, cache_entries=cap
            ),
        ) as handle:
            with Client(handle.address, timeout=120) as client:
                for i in range(sources):
                    assert client.verify(
                        _mix_source(1000 + i), filename=f"ev-{i}.fcl"
                    ).ok
                doc = client.metrics()
                evictions = doc.get("counters", {}).get("cache.evictions", 0)
                entries_gauge = doc.get("gauges", {}).get("cache.entries", 0)
    return {
        "cold_sources": sources,
        "warm": warm,
        "eviction": {
            "store_cap_entries": cap,
            "sources": sources,
            "evictions": int(evictions),
            "entries_gauge": int(entries_gauge),
        },
    }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def bench_serve_load(
    small: bool = False, fleet_workers: Optional[int] = None
) -> Dict[str, Any]:
    """The ``serve_load`` section of a ``repro-bench/1`` document."""
    if fleet_workers is None:
        fleet_workers = max(2, min(4, (os.cpu_count() or 2)))
    if small:
        clients, requests_each = 16, 2
        overload_clients = 6
        cache_sources, warm_passes = 8, 2
    else:
        clients, requests_each = 200, 4
        overload_clients = 12
        cache_sources, warm_passes = 16, 3
    return {
        "cpu_count": os.cpu_count() or 1,
        "mix": {"check": 16, "verify": 3, "run": 1},
        "throughput": _phase_throughput(clients, requests_each, fleet_workers),
        "overload": _phase_overload(overload_clients),
        "drain": _phase_drain(),
        "cache": _phase_cache(cache_sources, warm_passes),
    }


def render_serve_load(section: Dict[str, Any]) -> str:
    lines = []
    lines.append(
        f"serve-load — closed loop, mix check:verify:run = "
        f"{section['mix']['check']}:{section['mix']['verify']}:"
        f"{section['mix']['run']}, {section['cpu_count']} CPUs"
    )
    lines.append(
        f"{'target':>16s} {'clients':>8s} {'reqs':>6s} {'wall(ms)':>9s} "
        f"{'rps':>8s} {'p50(ms)':>8s} {'p99(ms)':>8s} {'errors':>7s}"
    )
    for row in section["throughput"]:
        lines.append(
            f"{row['target']:>16s} {row['clients']:8d} {row['requests']:6d} "
            f"{row['wall_ms']:9.1f} {row['throughput_rps']:8.1f} "
            f"{row['p50_ms']:8.2f} {row['p99_ms']:8.2f} "
            f"{sum(row['errors'].values()):7d}"
        )
    over = section["overload"]
    lines.append(
        f"overload: {over['sent']} sent -> {over['ok']} ok, "
        f"{over['overloaded']} overloaded, {over['other_errors']} other; "
        f"{over['hung_clients']} hung, {over['worker_crashes']} crashes"
    )
    drain = section["drain"]
    lines.append(
        f"drain: {drain['submitted']} in flight -> "
        f"{drain['completed']} completed, {drain['failed']} dropped"
    )
    cache = section["cache"]
    lines.append(
        f"shared store: warm hit ratio {cache['warm']['hit_ratio']:.1%} "
        f"({cache['warm']['hits']} hits / {cache['warm']['misses']} misses); "
        f"eviction leg: {cache['eviction']['evictions']} evictions at cap "
        f"{cache['eviction']['store_cap_entries']}"
    )
    return "\n".join(lines)
