"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``check FILE``            — type-check an FCL program (the prover).
* ``verify FILE``           — check, then independently verify the derivation.
* ``run FILE FN [ARGS...]`` — run a function single-threaded (int/bool args).
* ``derivation FILE FN``    — print the typing derivation of one function.
* ``stats FILE [FN]``       — check + verify + run with telemetry, print metrics.
* ``regions FILE FN [N]``   — run FN(N) and draw the dynamic region graph.
* ``table1``                — regenerate the Table 1 comparison matrix.
* ``corpus``                — list, check, and verify the bundled corpus.
* ``batch PATH...``         — check + verify every program under the given
  files/directories through the parallel + incremental pipeline.
* ``bench``                 — wall-clock benchmarks (``--json`` emits the
  ``repro-bench/1`` document; see docs/PERFORMANCE.md).
* ``fuzz``                  — differential soundness fuzzing: generate
  random programs and cross-check checker/verifier/runtime/erasure
  (``--json`` emits the ``repro-fuzz/1`` report; see docs/FUZZING.md).
* ``serve``                 — long-running JSON-lines daemon answering
  check/verify/run/batch against warm session state (``repro-rpc/1``
  over TCP and/or a unix socket; see docs/API.md).  Event tracing is on
  by default (``--trace-buffer 0`` disables).
* ``client ACTION``         — drive a running daemon (``ping``, ``check``,
  ``verify``, ``run``, ``corpus``, ``batch``, ``stats``, ``metrics``,
  ``trace``, ``shutdown``).  ``--prom`` renders ``metrics`` as Prometheus
  text; ``--trace-json FILE`` runs the action under client-side tracing
  and writes the stitched client+server Chrome trace.
* ``trace FILE [FN]``       — check + verify + run one program under
  event tracing and write Chrome trace-event JSON (Perfetto-loadable;
  see docs/OBSERVABILITY.md).
* ``top``                   — live terminal dashboard for a running
  daemon: request rates, per-method p50/p99, memo hit ratio, queue depth.

Exit codes follow :class:`repro.api.ExitCode`: 0 success, 1 check
rejection, 2 verification failure, 3 runtime error/bench regression,
4 paranoid divergence, 5 fuzz violation, 64 usage error.

``check``/``run``/``verify``/``stats`` all accept ``--metrics-json FILE``
to dump the telemetry registry as structured JSON (schema
``repro-telemetry/1``; see docs/OBSERVABILITY.md), and ``run`` accepts
``--trace-json FILE`` to export the heap-event trace as JSON lines.

``FILE`` is normally FCL source; a ``.py`` file works too if it embeds its
program in a module-level ``SOURCE = \"\"\"...\"\"\"`` literal (the style of
``examples/``), so ``repro stats examples/quickstart.py`` just works.

``check``/``verify``/``corpus``/``batch`` accept the pipeline flags
``--jobs N`` (per-function fan-out; ``--jobs 1`` is today's serial path),
``--mode thread|process`` (threads share the warm session in-process —
the default for ``--jobs > 1`` — while processes pay a serialization tax
but sidestep the GIL), ``--cache DIR`` (persistent content-addressed
certificate cache), and ``--trust-cache`` (skip re-verifying cached
certificates; integrity comes from the content hash).  See
docs/PERFORMANCE.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from . import api
from .api import Diagnostic, ExitCode
from .core.checker import Checker
from .core.errors import TypeError_
from .lang import ParseError, parse_program
from .lang.lexer import LexError
from .runtime.heap import Heap
from .runtime.machine import run_function
from .runtime.values import NONE, UNIT, Loc
from .verifier import VerificationError, Verifier


class Parser(argparse.ArgumentParser):
    """argparse, but usage errors exit with ``ExitCode.USAGE`` (64) like
    every other repro usage failure instead of argparse's default 2."""

    def error(self, message):
        self.print_usage(sys.stderr)
        self.exit(int(ExitCode.USAGE), f"{self.prog}: error: {message}\n")


_SOURCES: dict = {}

#: Diagnostics reported during this invocation, in order.  ``main``
#: exports them as the ``failures`` array of ``--metrics-json``
#: documents so machine consumers get structured records, not stderr.
_FAILURES: List[Diagnostic] = []


def _fail(diag: Diagnostic, source: str = "") -> None:
    """Report one diagnostic: render to stderr, record for metrics."""
    _FAILURES.append(diag)
    print(diag.render(source), file=sys.stderr)


def _usage(message: str) -> SystemExit:
    """A usage error: message on stderr, exit ``ExitCode.USAGE`` (64)."""
    print(f"error: {message}", file=sys.stderr)
    return SystemExit(int(ExitCode.USAGE))


def _extract_embedded_source(path: str, text: str) -> str:
    """FCL source embedded in a Python example: the module-level
    ``SOURCE = \"\"\"...\"\"\"`` string literal."""
    import ast as pyast

    try:
        tree = pyast.parse(text)
    except SyntaxError as exc:
        raise _usage(f"{path}: not valid Python: {exc}")
    for node in tree.body:
        if not isinstance(node, pyast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, pyast.Name)
                and target.id == "SOURCE"
                and isinstance(node.value, pyast.Constant)
                and isinstance(node.value.value, str)
            ):
                return node.value.value
    raise _usage(f"{path}: no module-level SOURCE string literal found")


def _read_source(path: str) -> str:
    """Read program text (extracting an embedded ``SOURCE`` literal from
    ``.py`` files) and remember it for diagnostic rendering."""
    try:
        source = Path(path).read_text()
    except OSError as exc:
        raise _usage(f"cannot read {path}: {exc}")
    if path.endswith(".py"):
        source = _extract_embedded_source(path, source)
    _SOURCES[path] = source
    return source


def _load(path: str):
    source = _read_source(path)
    try:
        return parse_program(source)
    except (ParseError, LexError) as exc:
        _fail(Diagnostic.from_exception(exc, file=path), source)
        raise SystemExit(int(ExitCode.CHECK_REJECT))


def _report_type_error(path: str, exc: TypeError_) -> None:
    _fail(Diagnostic.from_exception(exc, file=path), _SOURCES.get(path, ""))


def _wants_pipeline(args: argparse.Namespace) -> bool:
    """Pipeline flags route a command through the batch engine; without
    them the original single-process code path runs, byte-identical to
    previous releases."""
    return bool(
        getattr(args, "jobs", None) is not None
        or getattr(args, "mode", None)
        or getattr(args, "cache", None)
        or getattr(args, "trust_cache", False)
    )


def _make_pipeline(args: argparse.Namespace, verify: bool = True):
    from .pipeline import Pipeline

    if getattr(args, "trust_cache", False) and not getattr(args, "cache", None):
        raise _usage("--trust-cache requires --cache DIR")
    return Pipeline(
        jobs=args.jobs,
        cache_dir=args.cache,
        trust_cache=args.trust_cache,
        verify=verify,
        mode=getattr(args, "mode", None),
    )


def cmd_check(args: argparse.Namespace) -> int:
    program = _load(args.file)
    source = _SOURCES[args.file]
    if _wants_pipeline(args):
        with _make_pipeline(args, verify=False) as pipeline:
            result = pipeline.run(args.file, source, program)
        if not result.ok:
            _fail(result.error.to_diagnostic(args.file), source)
            return int(ExitCode.CHECK_REJECT)
        print(
            f"{args.file}: OK — {len(result.functions)} functions, "
            f"{result.nodes} derivation nodes"
        )
        return int(ExitCode.OK)
    result = api.check(source, filename=args.file, program=program)
    if not result.ok:
        for diag in result.diagnostics:
            _fail(diag, source)
        return int(result.exit_code)
    print(result.summary(args.file))
    return int(ExitCode.OK)


def cmd_verify(args: argparse.Namespace) -> int:
    program = _load(args.file)
    source = _SOURCES[args.file]
    if _wants_pipeline(args):
        with _make_pipeline(args) as pipeline:
            result = pipeline.run(args.file, source, program)
        if not result.ok:
            _fail(result.error.to_diagnostic(args.file), source)
            return int(
                ExitCode.CHECK_REJECT
                if result.error.stage == "check"
                else ExitCode.VERIFY_FAIL
            )
        print(f"{args.file}: verified ({result.verified} nodes)")
        return int(ExitCode.OK)
    result = api.verify(source, filename=args.file, program=program)
    if not result.ok:
        for diag in result.diagnostics:
            _fail(diag, source)
        return int(result.exit_code)
    print(result.summary(args.file))
    return int(ExitCode.OK)


def _parse_args(raw: List[str]):
    values = []
    for text in raw:
        if text == "true":
            values.append(True)
        elif text == "false":
            values.append(False)
        else:
            try:
                values.append(int(text))
            except ValueError:
                raise _usage(
                    f"arguments must be ints or true/false, got {text!r}"
                )
    return values


def _show(value, heap: Heap) -> str:
    if value is UNIT:
        return "()"
    if value is NONE:
        return "none"
    if isinstance(value, Loc):
        obj = heap.obj(value)
        fields = ", ".join(
            f"{name} = {_brief(v)}" for name, v in obj.fields.items()
        )
        return f"{obj.struct.name}{{{fields}}} @ {value}"
    return repr(value)


def _brief(value) -> str:
    if value is NONE:
        return "none"
    if isinstance(value, Loc):
        return str(value)
    return repr(value)


def cmd_run(args: argparse.Namespace) -> int:
    program = _load(args.file)
    if args.unchecked and (args.erased or args.paranoid):
        print(
            "error: --erased/--paranoid require the type checker "
            "(they rely on the §3.2 erasability of verified programs); "
            "drop --unchecked",
            file=sys.stderr,
        )
        return int(ExitCode.USAGE)
    if args.paranoid and (args.erased or args.no_reservation_checks):
        print(
            "error: --paranoid runs both guard modes itself; drop "
            "--erased/--no-reservation-checks",
            file=sys.stderr,
        )
        return int(ExitCode.USAGE)
    if not args.unchecked:
        try:
            Checker(program).check_program()
        except TypeError_ as exc:
            _report_type_error(args.file, exc)
            return 1
    tracer = None
    if args.trace or args.trace_json or args.paranoid:
        from .runtime.trace import Tracer

        tracer = Tracer()
        if args.seed is not None:
            tracer.metadata["seed"] = args.seed
    heap = Heap(tracer=tracer)
    # Verified-erasure fast path: the program type-checked, so the
    # reservation guards are compiled out at interpreter construction.
    check_reservations = not (args.no_reservation_checks or args.erased)
    try:
        result, interp = run_function(
            program,
            args.function,
            _parse_args(args.args),
            heap=heap,
            check_reservations=check_reservations,
            max_steps=args.max_steps,
            seed=args.seed,
            engine=args.engine,
        )
    except Exception as exc:  # surfaced verbatim: runtime failures matter
        _FAILURES.append(Diagnostic.from_exception(exc, file=args.file))
        print(f"runtime error: {exc}", file=sys.stderr)
        return int(ExitCode.RUNTIME_ERROR)
    if args.paranoid:
        # Cross-validate §3.2: re-run with guards erased on a fresh heap and
        # demand the observable trace (and result) are identical.
        from .runtime.trace import Tracer

        tracer2 = Tracer()
        heap2 = Heap(tracer=tracer2)
        try:
            result2, _ = run_function(
                program,
                args.function,
                _parse_args(args.args),
                heap=heap2,
                check_reservations=False,
                max_steps=args.max_steps,
                seed=args.seed,
                engine=args.engine,
            )
        except Exception as exc:
            print(f"paranoid: erased run failed: {exc}", file=sys.stderr)
            return int(ExitCode.DIVERGENCE)
        if tracer.to_dicts() != tracer2.to_dicts() or _show(
            result, heap
        ) != _show(result2, heap2):
            print(
                "paranoid: DIVERGENCE — erased run's observable trace "
                "differs from the guarded run",
                file=sys.stderr,
            )
            return int(ExitCode.DIVERGENCE)
        if args.engine == "ir":
            # Cross-engine leg: the bytecode run must also match a fresh
            # guarded tree-interpreter run byte for byte.
            tracer3 = Tracer()
            heap3 = Heap(tracer=tracer3)
            try:
                result3, _ = run_function(
                    program,
                    args.function,
                    _parse_args(args.args),
                    heap=heap3,
                    check_reservations=check_reservations,
                    max_steps=args.max_steps,
                    seed=args.seed,
                    engine="tree",
                )
            except Exception as exc:
                print(f"paranoid: tree run failed: {exc}", file=sys.stderr)
                return int(ExitCode.DIVERGENCE)
            if tracer.to_dicts() != tracer3.to_dicts() or _show(
                result, heap
            ) != _show(result3, heap3):
                print(
                    "paranoid: DIVERGENCE — ir engine's observable trace "
                    "differs from the tree interpreter",
                    file=sys.stderr,
                )
                return int(ExitCode.DIVERGENCE)
            print(
                "paranoid: ir and tree traces identical",
                file=sys.stderr,
            )
        print(
            f"paranoid: guarded and erased traces identical "
            f"({len(tracer)} events, "
            f"{interp.stats.reservation_checks} checks validated)",
            file=sys.stderr,
        )
    print(_show(result, heap))
    if args.trace_json:
        import json

        try:
            with open(args.trace_json, "w") as fh:
                # Reproduction metadata (e.g. --seed) rides along as one
                # leading {"meta": ...} line; absent when there is none,
                # so metadata-free exports are byte-stable across versions.
                if tracer.metadata:
                    fh.write(json.dumps({"meta": tracer.metadata}) + "\n")
                for event in tracer.to_dicts():
                    fh.write(json.dumps(event) + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.trace_json}: {exc}", file=sys.stderr)
            return 1
        print(
            f"wrote {len(tracer)} trace events to {args.trace_json}"
            + (f" ({tracer.dropped} dropped)" if tracer.dropped else ""),
            file=sys.stderr,
        )
    if args.trace:
        print(tracer.render(last=args.trace), file=sys.stderr)
    if args.stats:
        print(
            f"steps={interp.stats.steps} heap_reads={heap.reads} "
            f"heap_writes={heap.writes} objects={len(heap)}",
            file=sys.stderr,
        )
    return 0


def cmd_disasm(args: argparse.Namespace) -> int:
    """Dump the linear bytecode (and the optimizer's per-pass counter
    deltas) for one program, optionally restricted to one function."""
    from .ir.disasm import disassemble

    program = _load(args.file)
    source = _SOURCES[args.file]
    result = api.check(source, filename=args.file, program=program)
    if not result.ok:
        for diag in result.diagnostics:
            _fail(diag, source)
        return int(result.exit_code)
    try:
        text = disassemble(
            program,
            checked=not args.erased,
            observable=args.traced,
            optimize=not args.no_opt,
            function=args.function,
        )
    except KeyError:
        print(f"error: no function {args.function!r}", file=sys.stderr)
        return 1
    sys.stdout.write(text)
    return 0


def cmd_derivation(args: argparse.Namespace) -> int:
    program = _load(args.file)
    try:
        derivation = Checker(program).check_program()
    except TypeError_ as exc:
        print(f"{args.file}: type error: {exc}", file=sys.stderr)
        return 1
    if args.function not in derivation.funcs:
        print(f"error: no function {args.function!r}", file=sys.stderr)
        return 1
    print(derivation.funcs[args.function].body.render())
    return 0


def _pick_entry(program) -> Optional[str]:
    """The function ``repro stats`` runs when none is named: ``main`` or
    ``demo`` if present, else the first zero-parameter function."""
    for name in ("main", "demo"):
        if name in program.funcs and not program.funcs[name].params:
            return name
    for name, fdef in program.funcs.items():
        if not fdef.params:
            return name
    return None


def cmd_stats(args: argparse.Namespace) -> int:
    """Check + verify + run one program with telemetry on; print the
    metrics table (and export JSON via the shared --metrics-json flag)."""
    from . import telemetry

    program = _load(args.file)
    try:
        derivation = Checker(program).check_program()
    except TypeError_ as exc:
        _report_type_error(args.file, exc)
        return 1
    try:
        nodes = Verifier(program).verify_program(derivation)
    except VerificationError as exc:
        print(f"{args.file}: VERIFICATION FAILED: {exc}", file=sys.stderr)
        return 2
    fname = args.function or _pick_entry(program)
    ran = ""
    if fname is not None:
        if fname not in program.funcs:
            print(f"error: no function {fname!r}", file=sys.stderr)
            return 1
        heap = Heap()
        try:
            run_function(
                program,
                fname,
                _parse_args(args.args),
                heap=heap,
                sink_sends=True,
            )
        except Exception as exc:
            print(f"runtime error in {fname}: {exc}", file=sys.stderr)
            return 3
        ran = f"; ran {fname}()"
    print(
        f"{args.file}: checked + verified ({nodes} derivation nodes){ran}"
    )
    print()
    print(telemetry.render_table(telemetry.registry()))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Check + verify + (optionally) run one program under event-level
    tracing; write the Chrome trace-event JSON document.  The registry is
    enabled too, so checker/verifier/machine spans ride into the trace
    through the registry→tracer bridge."""
    import json

    from . import telemetry

    program = _load(args.file)
    source = _SOURCES[args.file]
    telemetry.enable()
    tr = telemetry.enable_tracing(capacity=args.buffer)
    try:
        result = api.check(source, filename=args.file, program=program)
        if not result.ok:
            for diag in result.diagnostics:
                _fail(diag, source)
            return int(result.exit_code)
        vresult = api.verify(source, filename=args.file, program=program)
        if not vresult.ok:
            for diag in vresult.diagnostics:
                _fail(diag, source)
            return int(vresult.exit_code)
        ran = ""
        fname = args.function or _pick_entry(program)
        if fname is not None:
            if fname not in program.funcs:
                print(f"error: no function {fname!r}", file=sys.stderr)
                return 1
            rresult = api.run(
                source,
                fname,
                _parse_args(args.args),
                filename=args.file,
                program=program,
                check_first=False,
            )
            if not rresult.ok:
                for diag in rresult.diagnostics:
                    _fail(diag, source)
                return int(rresult.exit_code)
            ran = f"; ran {fname}()"
    finally:
        telemetry.disable_tracing()
        telemetry.disable()
    doc = telemetry.to_chrome(tr)
    try:
        Path(args.out).write_text(json.dumps(doc, indent=1) + "\n")
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 1
    print(f"{args.file}: checked + verified{ran}")
    print(
        f"wrote {len(doc['traceEvents'])} trace events to {args.out}"
        + (f" ({tr.dropped} dropped)" if tr.dropped else "")
    )
    return int(ExitCode.OK)


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over the daemon's stats + metrics RPCs."""
    from .top import run_top

    return run_top(
        args.connect,
        interval=args.interval,
        once=args.once,
        iterations=args.iterations,
    )


def cmd_prove(args: argparse.Namespace) -> int:
    """Emit a JSON derivation certificate (the prover half of §5)."""
    from .core.serialize import program_derivation_to_json

    program = _load(args.file)
    try:
        derivation = Checker(program).check_program()
    except TypeError_ as exc:
        print(f"{args.file}: type error: {exc}", file=sys.stderr)
        return 1
    text = program_derivation_to_json(derivation, indent=1)
    if args.out == "-":
        print(text)
    else:
        Path(args.out).write_text(text)
        print(f"wrote certificate to {args.out}")
    return 0


def cmd_verify_cert(args: argparse.Namespace) -> int:
    """Verify a JSON certificate against a program (the verifier half)."""
    from .core.serialize import program_derivation_from_json

    program = _load(args.file)
    try:
        derivation = program_derivation_from_json(Path(args.cert).read_text())
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load certificate {args.cert}: {exc}", file=sys.stderr)
        return 2
    try:
        nodes = Verifier(program).verify_program(derivation)
    except VerificationError as exc:
        print(f"CERTIFICATE REJECTED: {exc}", file=sys.stderr)
        return 2
    print(f"certificate verified ({nodes} nodes)")
    return 0


def cmd_regions(args: argparse.Namespace) -> int:
    from .analysis import build_region_graph, to_dot

    program = _load(args.file)
    heap = Heap()
    call_args = _parse_args(args.args)
    result, _ = run_function(program, args.function, call_args, heap=heap)
    roots = [result] if isinstance(result, Loc) else list(heap.locations())
    graph = build_region_graph(heap, roots)
    if args.dot:
        print(to_dot(graph, heap))
        return 0
    print(f"{len(graph.regions)} dynamic regions, {len(graph.edges)} iso edges")
    for index, region in enumerate(graph.regions):
        members = ", ".join(str(loc) for loc in sorted(region))
        print(f"  region {index}: {{{members}}}")
    for owner_region, owner, fieldname, target in graph.edges:
        print(f"  region {owner_region} --{owner}.{fieldname}--> region {target}")
    print(f"region graph is a tree: {graph.is_tree()}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the wall-clock benchmarks (plain ``time.perf_counter`` loops,
    no pytest-benchmark) and print the table; ``--json`` writes the
    ``repro-bench/1`` document (see benchmarks/bench.schema.json).

    ``--compare OLD.json`` diffs against a stored report instead of just
    printing: a fresh run is measured (or ``--against NEW.json`` is read —
    a pure file diff, nothing is benchmarked), per-metric deltas are
    printed, and wall-clock regressions beyond ``--threshold`` percent
    exit 3."""
    import json

    from . import bench

    if args.against and not args.compare:
        print("error: --against requires --compare OLD.json", file=sys.stderr)
        return int(ExitCode.USAGE)
    if args.serve_load:
        from . import bench_serve

        doc = {
            "schema": bench.SCHEMA,
            "label": "PR10",
            "serve_load": bench_serve.bench_serve_load(small=args.small),
        }
        print(bench_serve.render_serve_load(doc["serve_load"]))
        if args.json:
            try:
                Path(args.json).write_text(json.dumps(doc, indent=1) + "\n")
            except OSError as exc:
                print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
                return 1
            print(f"wrote bench report to {args.json}", file=sys.stderr)
        return 0
    if args.compare:
        try:
            old = json.loads(Path(args.compare).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: cannot load {args.compare}: {exc}", file=sys.stderr)
            return int(ExitCode.USAGE)
        if args.against:
            try:
                new = json.loads(Path(args.against).read_text())
            except (OSError, ValueError) as exc:
                print(
                    f"error: cannot load {args.against}: {exc}", file=sys.stderr
                )
                return int(ExitCode.USAGE)
        else:
            new = bench.collect(small=args.small)
            if args.json:
                Path(args.json).write_text(json.dumps(new, indent=1) + "\n")
                print(f"wrote bench report to {args.json}", file=sys.stderr)
        try:
            cmp = bench.compare_docs(old, new, threshold=args.threshold)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return int(ExitCode.USAGE)
        print(bench.render_compare(cmp))
        return int(ExitCode.BENCH_REGRESS if cmp["regressions"] else ExitCode.OK)

    doc = bench.collect(small=args.small)
    print(bench.render_table(doc))
    if args.json:
        try:
            Path(args.json).write_text(json.dumps(doc, indent=1) + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote bench report to {args.json}", file=sys.stderr)
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential soundness fuzzing (see docs/FUZZING.md).  Exit code 0
    means the campaign matched expectations: no violations normally, at
    least one caught violation under ``--inject-bug``.  Exit code 5 means
    the opposite — a real soundness finding, or an injected bug the
    oracles failed to catch."""
    import json

    from .fuzz import FuzzConfig, run_campaign

    config = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        schedules=args.schedules,
        enumerate_limit=args.enumerate_limit,
        shrink=not args.no_shrink,
        stop_after=args.stop_after,
        inject_bug=args.inject_bug,
        jobs=args.jobs,
    )
    try:
        report = run_campaign(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return int(ExitCode.USAGE)
    cases = report["cases"]
    violations = report["violations"]
    print(
        f"fuzz: seed={report['seed']} budget={report['budget']} "
        f"generated={cases['generated']} accepted={cases['accepted']} "
        f"rejected={cases['rejected']} mutants={cases['mutants']} "
        f"(benign {cases['mutants_benign']}) "
        f"schedules={report['schedules']['random']}+"
        f"{report['schedules']['enumerated']} "
        f"engines={'+'.join(report['engines'])} "
        f"violations={len(violations)} [{report['wall_ms']} ms]"
    )
    coverage = " ".join(
        f"{rule}={count}" for rule, count in report["coverage"].items()
    )
    print(f"  vt coverage: {coverage}")
    for violation in violations:
        tag = f" via {violation['mutation']}" if violation["mutation"] else ""
        print(
            f"  VIOLATION [{violation['oracle']}] case "
            f"{violation['case']}{tag}: {violation['detail']}"
        )
        shrunk = violation["shrunk"]
        if shrunk is not None:
            print(
                f"    shrunk to {shrunk['nodes']} AST nodes "
                f"({shrunk['evals']} predicate runs)"
            )
    if args.json:
        try:
            Path(args.json).write_text(json.dumps(report, indent=1) + "\n")
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote fuzz report to {args.json}", file=sys.stderr)
    if args.inject_bug:
        if violations:
            print(
                f"injected bug {args.inject_bug!r} caught by the "
                f"{violations[0]['oracle']} oracle"
            )
            return 0
        print(
            f"injected bug {args.inject_bug!r} ESCAPED every oracle",
            file=sys.stderr,
        )
        return int(ExitCode.FUZZ_VIOLATION)
    return int(ExitCode.FUZZ_VIOLATION if violations else ExitCode.OK)


def cmd_table1(_args: argparse.Namespace) -> int:
    from .baselines import render_table

    print(render_table())
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    from .corpus import corpus_names, load_program, load_source

    if _wants_pipeline(args):
        with _make_pipeline(args) as pipeline:
            for name in corpus_names():
                result = pipeline.run(name, load_source(name))
                if not result.ok:
                    print(
                        f"{name}: {result.error.stage} error: "
                        f"{result.error.message}",
                        file=sys.stderr,
                    )
                    return 1 if result.error.stage == "check" else 2
                print(
                    f"{name:8s} {len(result.functions):3d} functions  "
                    f"checked + verified ({result.verified} nodes)"
                )
        return 0
    for name in corpus_names():
        program = load_program(name)
        derivation = Checker(program).check_program()
        nodes = Verifier(program).verify_program(derivation)
        print(
            f"{name:8s} {len(program.funcs):3d} functions  "
            f"checked + verified ({nodes} nodes)"
        )
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    from .pipeline import discover, run_batch

    try:
        programs = discover(args.paths)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return int(ExitCode.USAGE)
    if not programs:
        print("error: no programs found", file=sys.stderr)
        return int(ExitCode.USAGE)
    with _make_pipeline(args) as pipeline:
        return run_batch(programs, pipeline)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived ``repro-rpc/1`` daemon (see docs/API.md)."""
    import asyncio

    from . import telemetry
    from .client import ClientError, parse_address
    from .server import Server, ServerConfig, Service

    if args.trust_cache and not args.cache:
        raise _usage("--trust-cache requires --cache DIR")
    if (args.cache_entries or args.cache_bytes) and not args.cache:
        raise _usage("--cache-entries/--cache-bytes require --cache DIR")
    if args.workers < 0:
        raise _usage("--workers wants a non-negative count")
    host: Optional[str] = None
    port = 0
    if args.tcp:
        try:
            spec = parse_address(args.tcp)
        except ClientError as exc:
            raise _usage(str(exc))
        if not isinstance(spec, tuple):
            raise _usage("--tcp wants HOST:PORT (use --unix for sockets)")
        host, port = spec
    elif not args.unix:
        host, port = "127.0.0.1", 7621  # default listen address
    http_host: Optional[str] = None
    http_port = 0
    if args.http:
        try:
            http_spec = parse_address(args.http)
        except ClientError as exc:
            raise _usage(str(exc))
        if not isinstance(http_spec, tuple):
            raise _usage("--http wants HOST:PORT")
        http_host, http_port = http_spec
    telemetry.enable()
    if args.trace_buffer > 0:
        # Event tracing rides in a bounded ring buffer (constant memory
        # forever); exported through the `trace` RPC.
        telemetry.enable_tracing(
            capacity=args.trace_buffer, sample=args.trace_sample
        )
    from .server.protocol import (
        DEFAULT_MAX_QUEUE,
        DEFAULT_MAX_STEPS,
        DEFAULT_TIMEOUT_S,
        MAX_FRAME_BYTES,
    )

    config = ServerConfig(
        host=host,
        port=port,
        unix_path=args.unix,
        max_queue=(
            args.max_queue if args.max_queue is not None else DEFAULT_MAX_QUEUE
        ),
        timeout_s=(
            args.timeout if args.timeout is not None else DEFAULT_TIMEOUT_S
        ),
        max_frame=(
            args.max_frame if args.max_frame is not None else MAX_FRAME_BYTES
        ),
        workers=args.threads,
        http_host=http_host,
        http_port=http_port,
    )
    max_steps = (
        args.max_steps if args.max_steps is not None else DEFAULT_MAX_STEPS
    )
    if args.workers > 0:
        from .server.fleet import FleetConfig, FleetServer

        server: Server = FleetServer(
            fleet_config=FleetConfig(
                workers=args.workers,
                cache_dir=args.cache,
                trust_cache=args.trust_cache,
                cache_entries=args.cache_entries,
                cache_bytes=args.cache_bytes,
                max_steps=max_steps,
                jobs=args.check_jobs,
            ),
            config=config,
        )
    else:
        service = Service(
            cache_dir=args.cache,
            trust_cache=args.trust_cache,
            max_steps=max_steps,
            cache_entries=args.cache_entries,
            cache_bytes=args.cache_bytes,
            jobs=args.check_jobs,
        )
        server = Server(service=service, config=config)

    async def _serve() -> None:
        await server.start()
        listening = []
        if server.tcp_address is not None:
            listening.append(f"tcp {server.tcp_address[0]}:{server.tcp_address[1]}")
        if server.unix_path is not None:
            listening.append(f"unix {server.unix_path}")
        if server.http_address is not None:
            listening.append(
                f"http {server.http_address[0]}:{server.http_address[1]}"
            )
        mode = (
            f"{args.workers} worker processes"
            if args.workers > 0
            else f"{args.threads} threads"
        )
        print(
            f"repro serve: listening on {', '.join(listening)} ({mode})",
            file=sys.stderr,
        )
        sys.stderr.flush()
        await server.serve_forever(install_signals=True)

    asyncio.run(_serve())
    print("repro serve: drained, exiting", file=sys.stderr)
    return int(ExitCode.OK)


def _client_check(client, path: str) -> int:
    source = _read_source(path)
    result = client.check(source, filename=path)
    if not result.ok:
        for diag in result.diagnostics:
            _fail(diag, source)
        return int(result.exit_code)
    print(result.summary(path))
    return int(ExitCode.OK)


def _client_verify(client, path: str) -> int:
    source = _read_source(path)
    result = client.verify(source, filename=path)
    if not result.ok:
        for diag in result.diagnostics:
            _fail(diag, source)
        return int(result.exit_code)
    print(result.summary(path))
    return int(ExitCode.OK)


def _client_run(client, args: argparse.Namespace) -> int:
    if not args.rest:
        raise _usage("client run wants FILE FUNCTION [ARGS...]")
    path, function, *raw = args.rest
    source = _read_source(path)
    result = client.run(
        source,
        function,
        _parse_args(raw),
        filename=path,
        max_steps=args.max_steps,
        engine=args.engine,
    )
    if args.engine is None:
        # The server chose: say what actually ran (stdout stays parity-
        # clean with a local `repro run`).
        print(f"engine: {result.engine} (server default)", file=sys.stderr)
    if not result.ok:
        for diag in result.diagnostics:
            _fail(diag, source)
        return int(result.exit_code)
    print(result.value)
    return int(ExitCode.OK)


def _client_corpus(client) -> int:
    """Byte-compatible with ``repro corpus``: same lines, same order."""
    from .corpus import corpus_names, load_source

    for name in corpus_names():
        result = client.verify(load_source(name), filename=name)
        if not result.ok:
            for diag in result.diagnostics:
                _fail(diag, load_source(name))
            return int(result.exit_code)
        print(
            f"{name:8s} {result.functions:3d} functions  "
            f"checked + verified ({result.verified} nodes)"
        )
    return int(ExitCode.OK)


def _client_batch(client, paths: List[str]) -> int:
    from .api import VerifyResult
    from .pipeline import discover

    try:
        programs = discover(paths)
    except (OSError, ValueError) as exc:
        raise _usage(str(exc))
    if not programs:
        raise _usage("no programs found")
    reply = client.batch([(path, source) for path, source in programs])
    worst = ExitCode.OK
    ok_count = 0
    for entry in reply["programs"]:
        result = VerifyResult.from_dict(entry["result"])
        label = entry["label"]
        if result.ok:
            ok_count += 1
            print(result.summary(label))
        else:
            for diag in result.diagnostics:
                _fail(diag)
            worst = max(worst, result.exit_code)
    print(f"batch: {ok_count}/{len(reply['programs'])} programs OK")
    return int(worst)


def _client_metrics(client, prom: bool) -> int:
    import json

    from . import telemetry

    doc = client.metrics()
    if prom:
        print(telemetry.render_prometheus(telemetry.doc_to_registry(doc)), end="")
    else:
        print(json.dumps(doc, indent=1, sort_keys=True))
    return int(ExitCode.OK)


def _client_trace(client, rest: List[str]) -> int:
    """Fetch the server's trace ring buffer as a Chrome trace document
    (to stdout, or to ``rest[0]`` when given)."""
    import json

    from . import telemetry

    tdoc = client.trace_doc()
    tr = telemetry.Tracer(capacity=max(len(tdoc.get("events", [])), 1))
    tr.ingest(tdoc.get("events", []))
    tr.dropped = int(tdoc.get("dropped", 0))
    doc = telemetry.to_chrome(tr)
    if rest:
        try:
            Path(rest[0]).write_text(json.dumps(doc, indent=1) + "\n")
        except OSError as exc:
            print(f"error: cannot write {rest[0]}: {exc}", file=sys.stderr)
            return 1
        print(
            f"wrote {len(doc['traceEvents'])} trace events to {rest[0]}",
            file=sys.stderr,
        )
    else:
        print(json.dumps(doc, indent=1))
    if not tdoc.get("enabled", False):
        print(
            "note: server tracing is disabled (serve --trace-buffer 0)",
            file=sys.stderr,
        )
    return int(ExitCode.OK)


def _stitched_trace(client, tracer, path: str) -> None:
    """Pull the server's events into the client tracer and write the
    combined (cross-process) Chrome trace document."""
    import json

    from . import telemetry

    try:
        tdoc = client.trace_doc()
        tracer.ingest(tdoc.get("events", []))
    except Exception as exc:  # observability must not fail the action
        print(f"warning: could not fetch server trace: {exc}", file=sys.stderr)
    doc = telemetry.to_chrome(tracer)
    try:
        Path(path).write_text(json.dumps(doc, indent=1) + "\n")
    except OSError as exc:
        print(f"error: cannot write {path}: {exc}", file=sys.stderr)
        return
    print(
        f"wrote {len(doc['traceEvents'])} stitched trace events to {path}",
        file=sys.stderr,
    )


def _client_dispatch(client, args: argparse.Namespace) -> int:
    import json

    if args.action == "ping":
        print(json.dumps(client.ping(), sort_keys=True))
        return int(ExitCode.OK)
    if args.action == "check":
        if len(args.rest) != 1:
            raise _usage("client check wants exactly one FILE")
        return _client_check(client, args.rest[0])
    if args.action == "verify":
        if len(args.rest) != 1:
            raise _usage("client verify wants exactly one FILE")
        return _client_verify(client, args.rest[0])
    if args.action == "run":
        return _client_run(client, args)
    if args.action == "corpus":
        return _client_corpus(client)
    if args.action == "batch":
        if not args.rest:
            raise _usage("client batch wants PATH...")
        return _client_batch(client, args.rest)
    if args.action == "stats":
        print(json.dumps(client.stats(), indent=1, sort_keys=True))
        return int(ExitCode.OK)
    if args.action == "metrics":
        return _client_metrics(client, args.prom)
    if args.action == "trace":
        return _client_trace(client, args.rest)
    if args.action == "shutdown":
        client.shutdown()
        print("server draining", file=sys.stderr)
        return int(ExitCode.OK)
    raise _usage(f"unknown client action {args.action!r}")


def cmd_client(args: argparse.Namespace) -> int:
    """Drive a running ``repro serve`` daemon over ``repro-rpc/1``."""
    from .client import Client, ClientError, RemoteError

    local_tr = None
    if args.trace_json:
        from . import telemetry

        # Client-side tracing: every RPC round trip becomes an
        # `rpc.<method>` span whose context the daemon parents its own
        # request span under; afterwards the server's events are pulled
        # back and the stitched cross-process trace written to FILE.
        local_tr = telemetry.enable_tracing()
    try:
        with Client(args.connect, timeout=args.timeout) as client:
            code = _client_dispatch(client, args)
            if local_tr is not None:
                _stitched_trace(client, local_tr, args.trace_json)
            return code
    except RemoteError as exc:
        print(f"error: server rejected request: {exc}", file=sys.stderr)
        return int(ExitCode.RUNTIME_ERROR)
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return int(ExitCode.RUNTIME_ERROR)
    finally:
        if local_tr is not None:
            from . import telemetry

            telemetry.disable_tracing()


def build_parser() -> argparse.ArgumentParser:
    parser = Parser(
        prog="repro",
        description="Fearless-concurrency language tools (PLDI 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def metrics_flag(p):
        p.add_argument(
            "--metrics-json",
            metavar="FILE",
            default=None,
            help="enable telemetry and write the registry as JSON to FILE",
        )

    def pipeline_flags(p):
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="workers for per-function fan-out "
            "(default: all CPUs; 1 = in-process serial path)",
        )
        p.add_argument(
            "--mode",
            choices=("auto", "serial", "thread", "process"),
            default=None,
            help="fan-out execution mode: threads share the warm session "
            "in-process (default for --jobs > 1), processes pay a "
            "serialization tax but sidestep the GIL for large cold "
            "batches",
        )
        p.add_argument(
            "--cache",
            metavar="DIR",
            default=None,
            help="content-addressed certificate cache directory "
            "(created on demand; safe to share between runs)",
        )
        p.add_argument(
            "--trust-cache",
            action="store_true",
            help="skip re-verifying cached certificates (their content "
            "hash already pins every input they were verified against)",
        )

    p = sub.add_parser("check", help="type-check an FCL program")
    p.add_argument("file")
    metrics_flag(p)
    pipeline_flags(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("verify", help="check and independently verify")
    p.add_argument("file")
    metrics_flag(p)
    pipeline_flags(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("run", help="run a function single-threaded")
    p.add_argument("file")
    p.add_argument("function")
    p.add_argument("args", nargs="*")
    p.add_argument("--stats", action="store_true", help="print execution stats")
    p.add_argument(
        "--trace",
        type=int,
        nargs="?",
        const=25,
        default=None,
        metavar="N",
        help="print the last N heap events (default 25)",
    )
    p.add_argument(
        "--unchecked",
        action="store_true",
        help="skip the type checker (reservation checks will protect you)",
    )
    p.add_argument(
        "--no-reservation-checks",
        action="store_true",
        help="also erase the dynamic reservation checks",
    )
    p.add_argument(
        "--erased",
        action="store_true",
        help="verified-erasure fast path: compile the reservation guards "
        "out (§3.2; requires the type checker, so not with --unchecked)",
    )
    p.add_argument(
        "--paranoid",
        action="store_true",
        help="run guarded AND erased, cross-validating that erasure never "
        "changes the observable trace",
    )
    p.add_argument(
        "--trace-json",
        metavar="FILE",
        default=None,
        help="write the heap-event trace as JSON lines to FILE",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=None,
        help="scheduler seed recorded in trace/metrics metadata so a run "
        "can be reproduced exactly (single-threaded runs are "
        "deterministic regardless)",
    )
    p.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="abort with a runtime error after N interpreter steps "
        "(the step budget `repro serve` applies to every run request)",
    )
    p.add_argument(
        "--engine",
        choices=("tree", "ir"),
        default="tree",
        help="execution engine: the tree-walking interpreter (default) "
        "or the optimizing bytecode compiler (--engine ir)",
    )
    metrics_flag(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "disasm",
        help="dump the compiled bytecode and per-pass optimizer deltas",
    )
    p.add_argument("file")
    p.add_argument("function", nargs="?", default=None)
    p.add_argument(
        "--erased",
        action="store_true",
        help="compile the erased full tier (default: the checked tier)",
    )
    p.add_argument(
        "--traced",
        action="store_true",
        help="compile the observable forms a tracer-attached run uses",
    )
    p.add_argument(
        "--no-opt",
        action="store_true",
        help="stop after lowering: the unoptimized baseline to diff against",
    )
    p.set_defaults(func=cmd_disasm)

    p = sub.add_parser("derivation", help="print a typing derivation")
    p.add_argument("file")
    p.add_argument("function")
    p.set_defaults(func=cmd_derivation)

    p = sub.add_parser(
        "stats", help="check + verify + run with telemetry, print metrics"
    )
    p.add_argument("file")
    p.add_argument(
        "function",
        nargs="?",
        default=None,
        help="entry function to run (default: main/demo/first zero-arg)",
    )
    p.add_argument("args", nargs="*")
    metrics_flag(p)
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "trace",
        help="check + verify + run under event tracing; write Chrome "
        "trace-event JSON (Perfetto-loadable)",
    )
    p.add_argument("file")
    p.add_argument(
        "function",
        nargs="?",
        default=None,
        help="entry function to run (default: main/demo/first zero-arg)",
    )
    p.add_argument("args", nargs="*")
    p.add_argument(
        "--out",
        metavar="FILE",
        default="trace.json",
        help="output path for the trace document (default trace.json)",
    )
    p.add_argument(
        "--buffer",
        type=int,
        default=8192,
        metavar="N",
        help="event ring-buffer capacity (default 8192)",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard for a running daemon "
        "(request rates, p50/p99 latency, memo hits, queue depth)",
    )
    p.add_argument(
        "--connect",
        metavar="ADDR",
        default="127.0.0.1:7621",
        help="server address: HOST:PORT or unix:PATH "
        "(default 127.0.0.1:7621)",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll interval (default 2)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="exit after N frames (default: until interrupted)",
    )
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("prove", help="emit a JSON derivation certificate")
    p.add_argument("file")
    p.add_argument("--out", default="-", help="output path (default stdout)")
    p.set_defaults(func=cmd_prove)

    p = sub.add_parser(
        "verify-cert", help="verify a JSON certificate against a program"
    )
    p.add_argument("file")
    p.add_argument("cert")
    p.set_defaults(func=cmd_verify_cert)

    p = sub.add_parser("regions", help="run and draw the dynamic region graph")
    p.add_argument("file")
    p.add_argument("function")
    p.add_argument("args", nargs="*")
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.set_defaults(func=cmd_regions)

    p = sub.add_parser(
        "bench", help="wall-clock benchmarks (checker, unify, erasure)"
    )
    p.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the repro-bench/1 JSON document to FILE",
    )
    p.add_argument(
        "--small",
        action="store_true",
        help="smaller corpus/chains/widths (CI smoke mode)",
    )
    p.add_argument(
        "--serve-load",
        action="store_true",
        dest="serve_load",
        help="run the serve-fleet load harness instead (concurrent "
        "clients vs single-process / fleet; overload, drain, shared "
        "cache phases)",
    )
    p.add_argument(
        "--compare",
        metavar="OLD.json",
        default=None,
        help="diff a stored repro-bench/1 report against a fresh run "
        "(or --against NEW.json); exits 3 on wall-clock regression",
    )
    p.add_argument(
        "--against",
        metavar="NEW.json",
        default=None,
        help="with --compare: diff OLD against this stored report "
        "instead of benchmarking",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=50.0,
        metavar="PCT",
        help="regression tolerance on *_ms metrics, percent (default 50)",
    )
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "fuzz", help="differential soundness fuzzing (docs/FUZZING.md)"
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed")
    p.add_argument(
        "--budget", type=int, default=200, help="base cases to generate"
    )
    p.add_argument(
        "--schedules",
        type=int,
        default=4,
        help="random schedules per accepted case",
    )
    p.add_argument(
        "--enumerate-limit",
        type=int,
        default=120,
        help="bounded-exhaustive schedule cap per case (<= 3 threads)",
    )
    p.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the repro-fuzz/1 report to FILE",
    )
    p.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failing programs without minimizing them",
    )
    p.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="N",
        help="stop after N violations instead of exhausting the budget",
    )
    p.add_argument(
        "--inject-bug",
        metavar="NAME",
        default=None,
        help="self-test: doctor the checker with a named unsoundness "
        "(e.g. send-keeps-region) and demand the oracles catch it",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run the checker/verifier oracle in N worker processes "
        "(fixed-seed reports are identical to serial)",
    )
    metrics_flag(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("table1", help="regenerate the Table 1 matrix")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("corpus", help="check + verify the bundled corpus")
    pipeline_flags(p)
    metrics_flag(p)
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser(
        "batch",
        help="check + verify every program under PATHs via the pipeline",
    )
    p.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="program files, or directories to scan for *.fcl and "
        "corpus-style *.py programs",
    )
    pipeline_flags(p)
    metrics_flag(p)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "serve",
        help="long-running check/verify/run daemon (repro-rpc/1)",
    )
    p.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help="TCP listen address (default 127.0.0.1:7621 when --unix "
        "is not given; PORT 0 picks an ephemeral port)",
    )
    p.add_argument(
        "--unix",
        metavar="PATH",
        default=None,
        help="also/instead listen on a Unix domain socket at PATH",
    )
    p.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="serve verify/batch through the persistent certificate cache",
    )
    p.add_argument(
        "--trust-cache",
        action="store_true",
        help="skip re-verifying cached certificates (requires --cache)",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="max requests in flight before new ones get an "
        "'overloaded' error (default 16)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request timeout (default 30)",
    )
    p.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="step budget applied to every run request (default 5000000)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="pre-forked worker processes sharing one certificate "
        "store (0 = single-process mode on a thread pool; see "
        "--threads)",
    )
    p.add_argument(
        "--threads",
        type=int,
        default=8,
        metavar="N",
        help="worker threads executing requests in single-process "
        "mode (default 8; ignored with --workers)",
    )
    p.add_argument(
        "--check-jobs",
        type=int,
        default=1,
        metavar="N",
        help="per-request function fan-out: check a request's functions "
        "on N threads sharing the warm session (default 1)",
    )
    p.add_argument(
        "--http",
        metavar="HOST:PORT",
        default=None,
        help="also serve an HTTP/JSON gateway (POST /v1/check|verify|"
        "run) on this address; same admission limits as the socket",
    )
    p.add_argument(
        "--cache-entries",
        type=int,
        default=None,
        metavar="N",
        help="certificate-store entry cap; least-recently-used "
        "entries are evicted past it (default unlimited)",
    )
    p.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="certificate-store size cap in bytes (default unlimited)",
    )
    p.add_argument(
        "--max-frame",
        type=int,
        default=None,
        metavar="BYTES",
        help="request frame size limit (default 4 MiB)",
    )
    p.add_argument(
        "--trace-buffer",
        type=int,
        default=4096,
        metavar="N",
        help="event-trace ring buffer capacity (0 disables tracing; "
        "default 4096)",
    )
    p.add_argument(
        "--trace-sample",
        type=float,
        default=1.0,
        metavar="F",
        help="probability a root span is recorded (default 1.0)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "client",
        help="talk to a running `repro serve` daemon",
    )
    p.add_argument(
        "--connect",
        metavar="ADDR",
        default="127.0.0.1:7621",
        help="server address: HOST:PORT or unix:PATH "
        "(default 127.0.0.1:7621)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="socket timeout (default 120)",
    )
    p.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="step budget to request for `client run`",
    )
    p.add_argument(
        "--engine",
        choices=("tree", "ir"),
        default=None,
        help="execution engine to request for `client run` (omitted: the "
        "server picks — warm daemons default to ir; the effective engine "
        "is reported on stderr)",
    )
    p.add_argument(
        "--prom",
        action="store_true",
        help="render `client metrics` as Prometheus text exposition",
    )
    p.add_argument(
        "--trace-json",
        metavar="FILE",
        default=None,
        help="trace the action client-side, pull the server's events, "
        "and write the stitched Chrome trace document to FILE",
    )
    p.add_argument(
        "action",
        choices=(
            "ping",
            "check",
            "verify",
            "run",
            "corpus",
            "batch",
            "stats",
            "metrics",
            "trace",
            "shutdown",
        ),
        help="what to ask the server",
    )
    p.add_argument(
        "rest",
        nargs="*",
        metavar="ARG",
        help="action arguments: check/verify FILE · run FILE FN [ARGS...] "
        "· batch PATH... · trace [OUT.json]",
    )
    p.set_defaults(func=cmd_client)

    p = sub.add_parser("repl", help="interactive FCL session")
    p.set_defaults(func=lambda _args: __import__(
        "repro.repl", fromlist=["run_repl"]
    ).run_repl())

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    sys.setrecursionlimit(100_000)
    del _FAILURES[:]  # fresh per invocation (tests call main() repeatedly)
    args = build_parser().parse_args(argv)
    metrics_path = getattr(args, "metrics_json", None)
    reg = None
    if metrics_path or args.command == "stats":
        from . import telemetry

        reg = telemetry.enable()
    try:
        code = args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        code = 0
    finally:
        if reg is not None:
            from . import telemetry

            telemetry.disable()
    if reg is not None and metrics_path:
        from . import telemetry

        try:
            Path(metrics_path).write_text(
                telemetry.export_json(reg, failures=_FAILURES)
            )
        except OSError as exc:
            print(f"error: cannot write {metrics_path}: {exc}", file=sys.stderr)
            return code or 1
        print(f"wrote metrics to {metrics_path}", file=sys.stderr)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
