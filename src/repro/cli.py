"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``check FILE``            — type-check an FCL program (the prover).
* ``verify FILE``           — check, then independently verify the derivation.
* ``run FILE FN [ARGS...]`` — run a function single-threaded (int/bool args).
* ``derivation FILE FN``    — print the typing derivation of one function.
* ``regions FILE FN [N]``   — run FN(N) and draw the dynamic region graph.
* ``table1``                — regenerate the Table 1 comparison matrix.
* ``corpus``                — list, check, and verify the bundled corpus.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core.checker import Checker
from .core.errors import TypeError_
from .lang import ParseError, parse_program
from .lang.lexer import LexError
from .runtime.heap import Heap
from .runtime.machine import run_function
from .runtime.values import NONE, UNIT, Loc
from .verifier import VerificationError, Verifier


_SOURCES: dict = {}


def _load(path: str):
    try:
        source = Path(path).read_text()
    except OSError as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    _SOURCES[path] = source
    try:
        return parse_program(source)
    except ParseError as exc:
        from .lang.diagnostics import render_diagnostic, strip_location_prefix

        raise SystemExit(
            render_diagnostic(
                source,
                exc.span,
                strip_location_prefix(str(exc)),
                filename=path,
                kind="syntax error",
            )
        )
    except LexError as exc:
        raise SystemExit(f"{path}: syntax error: {exc}")


def _report_type_error(path: str, exc: TypeError_) -> None:
    from .lang.diagnostics import render_diagnostic

    source = _SOURCES.get(path, "")
    print(
        render_diagnostic(
            source, exc.span, exc.message, filename=path, kind="type error"
        ),
        file=sys.stderr,
    )


def cmd_check(args: argparse.Namespace) -> int:
    program = _load(args.file)
    try:
        derivation = Checker(program).check_program()
    except TypeError_ as exc:
        _report_type_error(args.file, exc)
        return 1
    print(
        f"{args.file}: OK — {len(program.funcs)} functions, "
        f"{derivation.node_count()} derivation nodes"
    )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    program = _load(args.file)
    try:
        derivation = Checker(program).check_program()
    except TypeError_ as exc:
        print(f"{args.file}: type error: {exc}", file=sys.stderr)
        return 1
    try:
        nodes = Verifier(program).verify_program(derivation)
    except VerificationError as exc:
        print(f"{args.file}: VERIFICATION FAILED: {exc}", file=sys.stderr)
        return 2
    print(f"{args.file}: verified ({nodes} nodes)")
    return 0


def _parse_args(raw: List[str]):
    values = []
    for text in raw:
        if text == "true":
            values.append(True)
        elif text == "false":
            values.append(False)
        else:
            try:
                values.append(int(text))
            except ValueError:
                raise SystemExit(
                    f"error: arguments must be ints or true/false, got {text!r}"
                )
    return values


def _show(value, heap: Heap) -> str:
    if value is UNIT:
        return "()"
    if value is NONE:
        return "none"
    if isinstance(value, Loc):
        obj = heap.obj(value)
        fields = ", ".join(
            f"{name} = {_brief(v)}" for name, v in obj.fields.items()
        )
        return f"{obj.struct.name}{{{fields}}} @ {value}"
    return repr(value)


def _brief(value) -> str:
    if value is NONE:
        return "none"
    if isinstance(value, Loc):
        return str(value)
    return repr(value)


def cmd_run(args: argparse.Namespace) -> int:
    program = _load(args.file)
    if not args.unchecked:
        try:
            Checker(program).check_program()
        except TypeError_ as exc:
            _report_type_error(args.file, exc)
            return 1
    tracer = None
    if args.trace:
        from .runtime.trace import Tracer

        tracer = Tracer()
    heap = Heap(tracer=tracer)
    try:
        result, interp = run_function(
            program,
            args.function,
            _parse_args(args.args),
            heap=heap,
            check_reservations=not args.no_reservation_checks,
        )
    except Exception as exc:  # surfaced verbatim: runtime failures matter
        print(f"runtime error: {exc}", file=sys.stderr)
        return 3
    print(_show(result, heap))
    if tracer is not None:
        print(tracer.render(last=args.trace), file=sys.stderr)
    if args.stats:
        print(
            f"steps={interp.stats.steps} heap_reads={heap.reads} "
            f"heap_writes={heap.writes} objects={len(heap)}",
            file=sys.stderr,
        )
    return 0


def cmd_derivation(args: argparse.Namespace) -> int:
    program = _load(args.file)
    try:
        derivation = Checker(program).check_program()
    except TypeError_ as exc:
        print(f"{args.file}: type error: {exc}", file=sys.stderr)
        return 1
    if args.function not in derivation.funcs:
        print(f"error: no function {args.function!r}", file=sys.stderr)
        return 1
    print(derivation.funcs[args.function].body.render())
    return 0


def cmd_prove(args: argparse.Namespace) -> int:
    """Emit a JSON derivation certificate (the prover half of §5)."""
    from .core.serialize import program_derivation_to_json

    program = _load(args.file)
    try:
        derivation = Checker(program).check_program()
    except TypeError_ as exc:
        print(f"{args.file}: type error: {exc}", file=sys.stderr)
        return 1
    text = program_derivation_to_json(derivation, indent=1)
    if args.out == "-":
        print(text)
    else:
        Path(args.out).write_text(text)
        print(f"wrote certificate to {args.out}")
    return 0


def cmd_verify_cert(args: argparse.Namespace) -> int:
    """Verify a JSON certificate against a program (the verifier half)."""
    from .core.serialize import program_derivation_from_json

    program = _load(args.file)
    try:
        derivation = program_derivation_from_json(Path(args.cert).read_text())
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: cannot load certificate {args.cert}: {exc}", file=sys.stderr)
        return 2
    try:
        nodes = Verifier(program).verify_program(derivation)
    except VerificationError as exc:
        print(f"CERTIFICATE REJECTED: {exc}", file=sys.stderr)
        return 2
    print(f"certificate verified ({nodes} nodes)")
    return 0


def cmd_regions(args: argparse.Namespace) -> int:
    from .analysis import build_region_graph, to_dot

    program = _load(args.file)
    heap = Heap()
    call_args = _parse_args(args.args)
    result, _ = run_function(program, args.function, call_args, heap=heap)
    roots = [result] if isinstance(result, Loc) else list(heap.locations())
    graph = build_region_graph(heap, roots)
    if args.dot:
        print(to_dot(graph, heap))
        return 0
    print(f"{len(graph.regions)} dynamic regions, {len(graph.edges)} iso edges")
    for index, region in enumerate(graph.regions):
        members = ", ".join(str(loc) for loc in sorted(region))
        print(f"  region {index}: {{{members}}}")
    for owner_region, owner, fieldname, target in graph.edges:
        print(f"  region {owner_region} --{owner}.{fieldname}--> region {target}")
    print(f"region graph is a tree: {graph.is_tree()}")
    return 0


def cmd_table1(_args: argparse.Namespace) -> int:
    from .baselines import render_table

    print(render_table())
    return 0


def cmd_corpus(_args: argparse.Namespace) -> int:
    from .corpus import corpus_names, load_program

    for name in corpus_names():
        program = load_program(name)
        derivation = Checker(program).check_program()
        nodes = Verifier(program).verify_program(derivation)
        print(
            f"{name:8s} {len(program.funcs):3d} functions  "
            f"checked + verified ({nodes} nodes)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fearless-concurrency language tools (PLDI 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="type-check an FCL program")
    p.add_argument("file")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("verify", help="check and independently verify")
    p.add_argument("file")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("run", help="run a function single-threaded")
    p.add_argument("file")
    p.add_argument("function")
    p.add_argument("args", nargs="*")
    p.add_argument("--stats", action="store_true", help="print execution stats")
    p.add_argument(
        "--trace",
        type=int,
        nargs="?",
        const=25,
        default=None,
        metavar="N",
        help="print the last N heap events (default 25)",
    )
    p.add_argument(
        "--unchecked",
        action="store_true",
        help="skip the type checker (reservation checks will protect you)",
    )
    p.add_argument(
        "--no-reservation-checks",
        action="store_true",
        help="also erase the dynamic reservation checks",
    )
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("derivation", help="print a typing derivation")
    p.add_argument("file")
    p.add_argument("function")
    p.set_defaults(func=cmd_derivation)

    p = sub.add_parser("prove", help="emit a JSON derivation certificate")
    p.add_argument("file")
    p.add_argument("--out", default="-", help="output path (default stdout)")
    p.set_defaults(func=cmd_prove)

    p = sub.add_parser(
        "verify-cert", help="verify a JSON certificate against a program"
    )
    p.add_argument("file")
    p.add_argument("cert")
    p.set_defaults(func=cmd_verify_cert)

    p = sub.add_parser("regions", help="run and draw the dynamic region graph")
    p.add_argument("file")
    p.add_argument("function")
    p.add_argument("args", nargs="*")
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.set_defaults(func=cmd_regions)

    p = sub.add_parser("table1", help="regenerate the Table 1 matrix")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("corpus", help="check + verify the bundled corpus")
    p.set_defaults(func=cmd_corpus)

    p = sub.add_parser("repl", help="interactive FCL session")
    p.set_defaults(func=lambda _args: __import__(
        "repro.repl", fromlist=["run_repl"]
    ).run_repl())

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    sys.setrecursionlimit(100_000)
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early: not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
