"""The ``if disconnected`` run-time check (§3.2, §5.2).

Two implementations:

* :func:`naive_disconnected` — the reference semantics (E15A/E15B): fully
  traverse both arguments' reachable subgraphs (within the region, i.e.
  crossing only non-iso references) and test whether they intersect.
  O(region size) regardless of where the arguments sit.

* :func:`efficient_disconnected` — the paper's two-step §5.2 algorithm:
  interleaved traversal of both argument graphs (never crossing iso
  fields), stopping as soon as the *smaller* side is fully explored; then
  compare the traversal's per-object encounter counts with the stored
  reference counts maintained by the heap.  Equal counts certify that no
  unexplored non-iso reference enters the explored component, so the
  graphs are disconnected; unequal counts are conservatively reported as
  connected.  In the intended usage (detaching a small, freshly repointed
  portion, as in fig 5) this terminates after visiting O(1) objects.

Both return a :class:`DisconnectStats` so benchmarks (experiment E3) can
compare work done.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Set, Tuple

from .heap import Heap
from .values import Loc, is_loc


@dataclass
class DisconnectStats:
    """Work performed by a disconnection check."""

    objects_visited: int = 0
    edges_followed: int = 0
    method: str = ""


def _non_iso_neighbors(heap: Heap, loc: Loc) -> List[Loc]:
    obj = heap.obj(loc)
    out: List[Loc] = []
    for decl in obj.struct.fields:
        if decl.is_iso:
            continue
        value = obj.fields[decl.name]
        if is_loc(value):
            out.append(value)
    return out


def naive_disconnected(
    heap: Heap, left: Loc, right: Loc
) -> Tuple[bool, DisconnectStats]:
    """Reference semantics: full traversal of both reachable subgraphs."""
    stats = DisconnectStats(method="naive")

    def component(root: Loc) -> Set[Loc]:
        seen: Set[Loc] = set()
        stack = [root]
        while stack:
            loc = stack.pop()
            if loc in seen:
                continue
            seen.add(loc)
            stats.objects_visited += 1
            for neighbor in _non_iso_neighbors(heap, loc):
                stats.edges_followed += 1
                if neighbor not in seen:
                    stack.append(neighbor)
        return seen

    left_set = component(left)
    right_set = component(right)
    return left_set.isdisjoint(right_set), stats


def efficient_disconnected(
    heap: Heap, left: Loc, right: Loc
) -> Tuple[bool, DisconnectStats]:
    """The §5.2 interleaved-traversal + reference-count algorithm."""
    stats = DisconnectStats(method="efficient")
    if left == right:
        stats.objects_visited = 1
        return False, stats

    class Side:
        def __init__(self, root: Loc):
            self.visited: Set[Loc] = {root}
            self.frontier: Deque[Loc] = deque([root])
            #: Traversal reference count: edges we saw entering each object.
            self.encounters: Dict[Loc, int] = {}
            self.done = False

    sides = (Side(left), Side(right))
    stats.objects_visited = 2

    while True:
        progressed = False
        for index, side in enumerate(sides):
            if side.done:
                continue
            if not side.frontier:
                side.done = True
                # This side is the smaller graph, fully explored: compare
                # traversal counts with stored counts.
                for loc in side.visited:
                    stored = heap.obj(loc).stored_refcount
                    if stored != side.encounters.get(loc, 0):
                        # An unexplored reference enters this component:
                        # conservatively report "connected".
                        return False, stats
                return True, stats
            loc = side.frontier.popleft()
            progressed = True
            other = sides[1 - index]
            for neighbor in _non_iso_neighbors(heap, loc):
                stats.edges_followed += 1
                side.encounters[neighbor] = side.encounters.get(neighbor, 0) + 1
                if neighbor in other.visited:
                    return False, stats  # point of intersection found
                if neighbor not in side.visited:
                    side.visited.add(neighbor)
                    side.frontier.append(neighbor)
                    stats.objects_visited += 1
        if not progressed:
            # Both sides exhausted without intersection or certification —
            # only possible when both frontiers emptied in the same round.
            for side in sides:
                for loc in side.visited:
                    stored = heap.obj(loc).stored_refcount
                    if stored != side.encounters.get(loc, 0):
                        return False, stats
            return True, stats
