"""The FCL abstract machine: dynamic reservation safety (§3.2) and
message-passing concurrency (§7).

Each thread evaluates its expression under a *reservation* — the set of
heap locations it may touch.  Every variable use, field read, and field
write consults the reservation (the pervasive dynamic checks of fig 7);
touching a location outside it raises :class:`ReservationViolation`, the
executable analogue of the semantics "getting stuck".  The paper proves
well-typed programs never trip these checks, which is why a real
implementation can erase them — benchmark E5 measures exactly that erasure
(``check_reservations=False``).

Threads communicate by rendezvous ``send``/``recv`` pairs (fig 15): the
sender's reachable ``live-set`` moves wholesale from its reservation to the
receiver's.

The interpreter is a recursive generator so that the scheduler can suspend
threads at ``send``/``recv`` (and, when ``preemptive``, at every heap
access) and interleave them arbitrarily — hypothesis drives random
schedules over it in the race-freedom tests (experiment E7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Generator, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..lang import ast
from ..telemetry import registry as _telemetry
from .disconnect import DisconnectStats, efficient_disconnected, naive_disconnected
from .heap import Heap
from .trace import RECV as TRACE_RECV
from .trace import SEND as TRACE_SEND
from .trace import Tracer
from .values import NONE, UNIT, Loc, RuntimeValue, is_loc


class MachineError(Exception):
    """Internal evaluation error (malformed program reached the runtime)."""


class ReservationViolation(Exception):
    """A thread touched a location outside its reservation — the dynamic
    semantics' "stuck" state.  Well-typed programs never raise this."""


class DeadlockError(Exception):
    """All live threads are blocked on send/recv."""


class StepLimitExceeded(MachineError):
    """A per-run step budget was exhausted (``run_function(max_steps=)``,
    the ``repro serve`` per-request budget, or ``repro run --max-steps``)."""


# Yield events from the interpreter generator to the scheduler.
EV_STEP = "step"
EV_SEND = "send"
EV_RECV = "recv"


class Env:
    """A function frame: a stack of block scopes."""

    def __init__(self, initial: Optional[Dict[str, RuntimeValue]] = None):
        self._scopes: List[Dict[str, RuntimeValue]] = [dict(initial or {})]

    def push(self) -> None:
        self._scopes.append({})

    def pop(self) -> None:
        self._scopes.pop()

    def bind(self, name: str, value: RuntimeValue) -> None:
        self._scopes[-1][name] = value

    def lookup(self, name: str) -> RuntimeValue:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise MachineError(f"unbound variable {name!r} at run time")

    def assign(self, name: str, value: RuntimeValue) -> None:
        for scope in reversed(self._scopes):
            if name in scope:
                scope[name] = value
                return
        raise MachineError(f"assignment to unbound variable {name!r}")


@dataclass
class ThreadStats:
    steps: int = 0
    sends: int = 0
    recvs: int = 0
    #: Dynamic reservation checks performed (fig 7's pervasive checks).
    reservation_checks: int = 0
    #: Cumulative cost of those checks: 1 per membership test, plus the
    #: live-set size for each send's containment check.
    reservation_cost: int = 0
    #: Times the scheduler advanced this thread.
    scheduled: int = 0
    #: Scheduler iterations this thread spent blocked on send/recv.
    blocked_ticks: int = 0
    disconnect_checks: List[DisconnectStats] = field(default_factory=list)


def publish_thread_stats(stats: ThreadStats) -> None:
    """Fold one thread's counters into the active telemetry registry
    (no-op when telemetry is disabled)."""
    tel = _telemetry()
    if not tel.enabled:
        return
    tel.inc("machine.steps", stats.steps)
    tel.inc("machine.sends", stats.sends)
    tel.inc("machine.recvs", stats.recvs)
    tel.inc("machine.reservation_checks", stats.reservation_checks)
    tel.inc("machine.reservation_cost", stats.reservation_cost)
    tel.inc("machine.scheduled", stats.scheduled)
    tel.inc("machine.blocked_ticks", stats.blocked_ticks)
    tel.inc("machine.disconnect_checks", len(stats.disconnect_checks))
    for dstats in stats.disconnect_checks:
        tel.observe("machine.disconnect.objects_visited", dstats.objects_visited)


class Interpreter:
    """Evaluates FCL expressions for one thread."""

    def __init__(
        self,
        program: ast.Program,
        heap: Heap,
        reservation: Set[Loc],
        check_reservations: bool = True,
        disconnect: str = "efficient",
        preemptive: bool = False,
    ):
        self.program = program
        self.heap = heap
        self.reservation = reservation
        self.check_reservations = check_reservations
        self.preemptive = preemptive
        self.stats = ThreadStats()
        if disconnect == "efficient":
            self._disconnected = efficient_disconnected
        elif disconnect == "naive":
            self._disconnected = naive_disconnected
        else:
            raise ValueError(f"unknown disconnect implementation {disconnect!r}")
        # Verified-erasure fast path (§3.2): for a type-checked program the
        # reservation checks can never fire, so the guard is chosen ONCE at
        # construction — erased runs dispatch straight to the identity
        # function instead of paying a branch per location use.
        self._guard = self._guard_checked if check_reservations else self._guard_erased
        tel = _telemetry()
        if tel.enabled:
            tel.inc(
                "machine.guard_mode.checked"
                if check_reservations
                else "machine.guard_mode.erased"
            )

    # -- reservation discipline -------------------------------------------------

    def _guard_checked(self, value: RuntimeValue) -> RuntimeValue:
        """The dynamic reservation check applied on every location use."""
        if is_loc(value):
            self.stats.reservation_checks += 1
            self.stats.reservation_cost += 1
            if value not in self.reservation:
                raise ReservationViolation(
                    f"access to {value} outside the thread's reservation"
                )
        return value

    @staticmethod
    def _guard_erased(value: RuntimeValue) -> RuntimeValue:
        """Erased guard: reservation checks compiled out for verified code."""
        return value

    # -- entry points ----------------------------------------------------------

    def call(
        self, name: str, args: Iterable[RuntimeValue]
    ) -> Generator[Tuple, RuntimeValue, RuntimeValue]:
        fdef = self.program.func(name)
        args = list(args)
        if len(args) != len(fdef.params):
            raise MachineError(
                f"{name} expects {len(fdef.params)} arguments, got {len(args)}"
            )
        env = Env({p.name: self._guard(a) for p, a in zip(fdef.params, args)})
        result = yield from self._eval(fdef.body, env)
        return result

    # -- the evaluator ------------------------------------------------------------

    def _eval(
        self, node: ast.Expr, env: Env
    ) -> Generator[Tuple, RuntimeValue, RuntimeValue]:
        self.stats.steps += 1
        if self.preemptive:
            yield (EV_STEP,)

        if isinstance(node, ast.IntLit):
            return node.value
        if isinstance(node, ast.BoolLit):
            return node.value
        if isinstance(node, ast.UnitLit):
            return UNIT
        if isinstance(node, ast.NoneLit):
            return NONE
        if isinstance(node, ast.VarRef):
            return self._guard(env.lookup(node.name))
        if isinstance(node, ast.SomeExpr):
            return (yield from self._eval(node.inner, env))
        if isinstance(node, ast.IsNone):
            value = yield from self._eval(node.inner, env)
            return value is NONE
        if isinstance(node, ast.IsSome):
            value = yield from self._eval(node.inner, env)
            return value is not NONE

        if isinstance(node, ast.Block):
            env.push()
            try:
                result: RuntimeValue = UNIT
                for index, entry in enumerate(node.body):
                    value = yield from self._eval(entry, env)
                    is_last = index == len(node.body) - 1
                    if is_last and not isinstance(entry, ast.LetBind):
                        result = value
                return result
            finally:
                env.pop()

        if isinstance(node, ast.LetBind):
            value = yield from self._eval(node.init, env)
            env.bind(node.name, value)
            return UNIT

        if isinstance(node, ast.LetSome):
            scrutinee = yield from self._eval(node.scrutinee, env)
            if scrutinee is NONE:
                if node.else_block is None:
                    return UNIT
                return (yield from self._eval(node.else_block, env))
            env.push()
            try:
                env.bind(node.name, scrutinee)
                return (yield from self._eval(node.then_block, env))
            finally:
                env.pop()

        if isinstance(node, ast.Assign):
            return (yield from self._eval_assign(node, env))

        if isinstance(node, ast.FieldRef):
            base = yield from self._eval(node.base, env)
            loc = self._as_loc(base, node)
            self._guard(loc)
            value = self.heap.read_field(loc, node.fieldname)
            return self._guard(value) if is_loc(value) else value

        if isinstance(node, ast.If):
            cond = yield from self._eval(node.cond, env)
            if cond:
                return (yield from self._eval(node.then_block, env))
            if node.else_block is not None:
                return (yield from self._eval(node.else_block, env))
            return UNIT

        if isinstance(node, ast.While):
            while True:
                cond = yield from self._eval(node.cond, env)
                if not cond:
                    return UNIT
                yield from self._eval(node.body, env)

        if isinstance(node, ast.IfDisconnected):
            left = yield from self._eval(node.left, env)
            right = yield from self._eval(node.right, env)
            left_loc = self._as_loc(left, node)
            right_loc = self._as_loc(right, node)
            self._guard(left_loc)
            self._guard(right_loc)
            disconnected, stats = self._disconnected(self.heap, left_loc, right_loc)
            self.stats.disconnect_checks.append(stats)
            if disconnected:
                return (yield from self._eval(node.then_block, env))
            if node.else_block is not None:
                return (yield from self._eval(node.else_block, env))
            return UNIT

        if isinstance(node, ast.Unop):
            value = yield from self._eval(node.inner, env)
            return (not value) if node.op == "!" else -value

        if isinstance(node, ast.Binop):
            left = yield from self._eval(node.left, env)
            right = yield from self._eval(node.right, env)
            return self._binop(node.op, left, right)

        if isinstance(node, ast.New):
            inits: Dict[str, RuntimeValue] = {}
            for fieldname, init in node.inits.items():
                inits[fieldname] = yield from self._eval(init, env)
            sdef = self.program.struct(node.struct)
            loc = self.heap.alloc(sdef, inits)
            self.reservation.add(loc)
            return loc

        if isinstance(node, ast.Call):
            args = []
            for arg in node.args:
                args.append((yield from self._eval(arg, env)))
            return (yield from self.call(node.func, args))

        if isinstance(node, ast.Send):
            value = yield from self._eval(node.value, env)
            root = self._as_loc(value, node)
            live = self.heap.live_set(root)
            if self.check_reservations:
                # The send containment check walks the whole live set.
                self.stats.reservation_checks += 1
                self.stats.reservation_cost += len(live)
                if not live <= self.reservation:
                    raise ReservationViolation(
                        "send: the live set leaks outside the sender's reservation"
                    )
            self.stats.sends += 1
            yield (EV_SEND, self.heap.obj(root).struct.name, root, live)
            return UNIT

        if isinstance(node, ast.Recv):
            self.stats.recvs += 1
            root = yield (EV_RECV, ast.strip_maybe(node.ty).name)
            return root

        raise MachineError(f"cannot evaluate {type(node).__name__}")

    def _eval_assign(
        self, node: ast.Assign, env: Env
    ) -> Generator[Tuple, RuntimeValue, RuntimeValue]:
        if isinstance(node.target, ast.VarRef):
            value = yield from self._eval(node.value, env)
            env.assign(node.target.name, value)
            return UNIT
        target: ast.FieldRef = node.target
        base = yield from self._eval(target.base, env)
        loc = self._as_loc(base, node)
        value = yield from self._eval(node.value, env)
        self._guard(loc)
        if is_loc(value):
            self._guard(value)
        self.heap.write_field(loc, target.fieldname, value)
        return UNIT

    @staticmethod
    def _binop(op: str, left: RuntimeValue, right: RuntimeValue) -> RuntimeValue:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise MachineError("division by zero")
            return left // right
        if op == "%":
            if right == 0:
                raise MachineError("modulo by zero")
            return left % right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "&&":
            return bool(left) and bool(right)
        if op == "||":
            return bool(left) or bool(right)
        raise MachineError(f"unknown operator {op!r}")

    @staticmethod
    def _as_loc(value: RuntimeValue, node: ast.Expr) -> Loc:
        if not is_loc(value):
            raise MachineError(
                f"expected an object reference, got {value!r} "
                f"(did a none reach a non-nullable position?)"
            )
        return value


# ---------------------------------------------------------------------------
# Scheduling policies
# ---------------------------------------------------------------------------


class SchedulePoint(Exception):
    """Raised by a probing :class:`ScriptedScheduler` at the first choice
    point its script does not cover.  Carries the number of options so a
    schedule explorer can branch on every alternative (see
    :mod:`repro.fuzz.explore`)."""

    def __init__(self, options: int, prefix: Tuple[int, ...]):
        super().__init__(f"unscripted choice point with {options} options")
        self.options = options
        self.prefix = prefix


class Scheduler:
    """Pluggable scheduling policy — which thread advances, and which
    receiver completes a rendezvous.

    ``pick`` receives the runnable threads plus a read-only map of how many
    scheduler iterations each runnable thread has waited since it was last
    advanced (for fairness policies).  Both hooks must return an element of
    the list they were given.
    """

    def pick(self, runnable: List["Thread"], waits: Mapping[int, int]) -> "Thread":
        raise NotImplementedError

    def pick_receiver(
        self, sender: "Thread", matching: List["Thread"]
    ) -> "Thread":
        return matching[0]


class RandomScheduler(Scheduler):
    """The classic uniform-random policy (experiment E7).  Fully
    deterministic for a given seed, but unfair: a thread can starve for an
    unbounded (if improbable) number of picks."""

    def __init__(self, seed: Optional[int] = None):
        self.rng = random.Random(seed)

    def pick(self, runnable: List["Thread"], waits: Mapping[int, int]) -> "Thread":
        return self.rng.choice(runnable)

    def pick_receiver(
        self, sender: "Thread", matching: List["Thread"]
    ) -> "Thread":
        return self.rng.choice(matching)


class FairRandomScheduler(RandomScheduler):
    """Random scheduling with a starvation bound: once a runnable thread
    has waited ``fairness_bound`` consecutive iterations without being
    advanced, it is picked immediately (longest wait first, lowest ident
    breaking ties).  Used by the fuzzer so no generated thread can hide a
    schedule-dependent bug behind an astronomically unlikely pick
    sequence."""

    def __init__(self, seed: Optional[int] = None, fairness_bound: int = 8):
        super().__init__(seed)
        if fairness_bound < 1:
            raise ValueError("fairness_bound must be >= 1")
        self.fairness_bound = fairness_bound

    def pick(self, runnable: List["Thread"], waits: Mapping[int, int]) -> "Thread":
        starved = [
            t for t in runnable if waits.get(t.ident, 0) >= self.fairness_bound
        ]
        if starved:
            return max(starved, key=lambda t: (waits.get(t.ident, 0), -t.ident))
        return self.rng.choice(runnable)


class ScriptedScheduler(Scheduler):
    """Deterministic replay of an explicit decision sequence.

    Choice points with a single option never consume a decision, so a
    script is a dense sequence of *real* choices — the representation the
    fuzzer's schedule enumeration and failure reports use.  Past the end
    of the script the scheduler either keeps picking the first option
    (``probe=False``, replay mode) or raises :class:`SchedulePoint`
    (``probe=True``, exploration mode).  ``taken`` records the full dense
    decision sequence actually used, so a completed run can be replayed
    exactly.
    """

    def __init__(self, script: Sequence[int] = (), probe: bool = False):
        self.script = list(script)
        self.probe = probe
        self.taken: List[int] = []
        self._cursor = 0

    def _choose(self, options: int) -> int:
        if options <= 1:
            return 0
        if self._cursor < len(self.script):
            index = self.script[self._cursor]
            self._cursor += 1
            if not 0 <= index < options:
                raise MachineError(
                    f"scheduler script decision {index} out of range "
                    f"(only {options} options)"
                )
        elif self.probe:
            raise SchedulePoint(options, tuple(self.taken))
        else:
            index = 0
        self.taken.append(index)
        return index

    def pick(self, runnable: List["Thread"], waits: Mapping[int, int]) -> "Thread":
        return runnable[self._choose(len(runnable))]

    def pick_receiver(
        self, sender: "Thread", matching: List["Thread"]
    ) -> "Thread":
        return matching[self._choose(len(matching))]


# ---------------------------------------------------------------------------
# Threads and the concurrent machine
# ---------------------------------------------------------------------------

READY = "ready"
BLOCKED_SEND = "blocked_send"
BLOCKED_RECV = "blocked_recv"
DONE = "done"
FAILED = "failed"


class Thread:
    def __init__(self, ident: int, interp: Interpreter, gen: Generator):
        self.ident = ident
        self.interp = interp
        self.gen = gen
        self.state = READY
        self.pending: Optional[Tuple] = None  # the blocking event
        self.inbox: Optional[RuntimeValue] = None  # value to resume with
        self.result: Optional[RuntimeValue] = None
        self.error: Optional[BaseException] = None

    @property
    def reservation(self) -> Set[Loc]:
        return self.interp.reservation


def _describe_blocked(thread: Thread) -> str:
    """Deadlock-report description of a blocked thread.  Robust against a
    ``pending`` payload that was never stamped (or already cleared): a
    thread observed mid-transition must not turn the diagnostic itself
    into a crash."""
    pending = thread.pending
    if pending is not None and len(pending) > 1:
        return f"{thread.state}({pending[1]})"
    return f"{thread.state}(?)"


class Machine:
    """A concurrent configuration: one shared heap, n threads with disjoint
    reservations, rendezvous send/recv."""

    def __init__(
        self,
        program: ast.Program,
        check_reservations: bool = True,
        disconnect: str = "efficient",
        preemptive: bool = True,
        seed: Optional[int] = None,
        scheduler: Optional[Scheduler] = None,
        tracer: Optional[Tracer] = None,
        engine: str = "tree",
    ):
        if engine not in ("tree", "ir"):
            raise ValueError(f"unknown engine {engine!r}; expected 'tree' or 'ir'")
        self.program = program
        self.heap = Heap(tracer=tracer)
        self.check_reservations = check_reservations
        self.disconnect = disconnect
        self.preemptive = preemptive
        self.engine = engine
        self.seed = seed
        self.scheduler = scheduler if scheduler is not None else RandomScheduler(seed)
        self.threads: List[Thread] = []
        #: Completed send/recv pairings (EC3 steps).
        self.rendezvous = 0
        #: Scheduler iterations each thread has waited while runnable since
        #: it was last advanced (fairness bookkeeping, ident → ticks).
        self.waits: Dict[int, int] = {}
        #: The longest such wait any thread endured before being advanced —
        #: exported as the ``machine.starvation_max_wait`` gauge.
        self.starvation_max_wait = 0

    def spawn(self, func: str, args: Iterable[RuntimeValue] = ()) -> Thread:
        interp = _make_engine(
            self.engine,
            self.program,
            self.heap,
            reservation=set(),
            check_reservations=self.check_reservations,
            disconnect=self.disconnect,
            preemptive=self.preemptive,
        )
        args = list(args)
        for arg in args:
            if is_loc(arg):
                interp.reservation |= self.heap.live_set(arg)
        thread = Thread(len(self.threads), interp, interp.call(func, args))
        self.threads.append(thread)
        return thread

    def alloc(self, thread: Thread, struct: str, **inits: RuntimeValue) -> Loc:
        """Host-side allocation into a thread's reservation (test/example
        scaffolding)."""
        loc = self.heap.alloc(self.program.struct(struct), inits)
        thread.reservation.add(loc)
        return loc

    # -- invariants --------------------------------------------------------------

    def reservations_disjoint(self) -> bool:
        seen: Set[Loc] = set()
        for thread in self.threads:
            if seen & thread.reservation:
                return False
            seen |= thread.reservation
        return True

    # -- scheduling --------------------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> None:
        """Round-robin/random scheduler until all threads finish.

        Raises DeadlockError when all remaining threads block, and
        re-raises the first thread failure (including reservation
        violations)."""
        tel = _telemetry()
        if not tel.enabled:
            self._run(max_steps)
            return
        reads0, writes0 = self.heap.reads, self.heap.writes
        try:
            with tel.span("machine.run"):
                self._run(max_steps)
        finally:
            tel.inc("machine.threads", len(self.threads))
            tel.inc("machine.rendezvous", self.rendezvous)
            tel.inc("machine.heap_reads", self.heap.reads - reads0)
            tel.inc("machine.heap_writes", self.heap.writes - writes0)
            if self.seed is not None:
                tel.set_gauge("machine.seed", self.seed)
            tel.set_gauge_max(
                "machine.starvation_max_wait", self.starvation_max_wait
            )
            for t in self.threads:
                publish_thread_stats(t.interp.stats)

    def _run(self, max_steps: int) -> None:
        for _ in range(max_steps):
            self._match_rendezvous()
            runnable = [t for t in self.threads if t.state == READY]
            if not runnable:
                blocked = [
                    t
                    for t in self.threads
                    if t.state in (BLOCKED_SEND, BLOCKED_RECV)
                ]
                if not blocked:
                    return  # all done
                states = ", ".join(
                    f"thread {t.ident}: {_describe_blocked(t)}" for t in blocked
                )
                raise DeadlockError(f"all threads blocked — {states}")
            for t in self.threads:
                if t.state in (BLOCKED_SEND, BLOCKED_RECV):
                    t.interp.stats.blocked_ticks += 1
            thread = self.scheduler.pick(runnable, self.waits)
            wait = self.waits.pop(thread.ident, 0)
            if wait > self.starvation_max_wait:
                self.starvation_max_wait = wait
            for t in runnable:
                if t is not thread:
                    self.waits[t.ident] = self.waits.get(t.ident, 0) + 1
            self._advance(thread)
            for t in self.threads:
                if t.state == FAILED:
                    raise t.error  # type: ignore[misc]
        raise MachineError("scheduler step budget exhausted")

    def _advance(self, thread: Thread) -> None:
        thread.interp.stats.scheduled += 1
        if self.heap.tracer is not None:
            self.heap.tracer.current_thread = thread.ident
        try:
            if thread.inbox is not None:
                value, thread.inbox = thread.inbox, None
                event = thread.gen.send(value)
            else:
                event = next(thread.gen)
        except StopIteration as stop:
            thread.state = DONE
            thread.result = stop.value
            return
        except BaseException as exc:  # noqa: BLE001 — surfaced to caller
            thread.state = FAILED
            thread.error = exc
            return
        kind = event[0]
        if kind == EV_STEP:
            return
        if kind == EV_SEND:
            thread.state = BLOCKED_SEND
            thread.pending = event
            return
        if kind == EV_RECV:
            thread.state = BLOCKED_RECV
            thread.pending = event
            return
        raise MachineError(f"unknown interpreter event {event!r}")

    def _match_rendezvous(self) -> None:
        senders = [t for t in self.threads if t.state == BLOCKED_SEND]
        receivers = [t for t in self.threads if t.state == BLOCKED_RECV]
        for sender in senders:
            _kind, sent_struct, root, live = sender.pending
            matching = [r for r in receivers if r.pending[1] == sent_struct]
            if not matching:
                continue
            receiver = self.scheduler.pick_receiver(sender, matching)
            receivers.remove(receiver)
            # EC3 Communication-Paired-Step (fig 15): the live set moves
            # from the sender's reservation to the receiver's.
            self.rendezvous += 1
            if self.heap.tracer is not None:
                self.heap.tracer.record(
                    TRACE_SEND, root, struct=sent_struct, thread=sender.ident
                )
                self.heap.tracer.record(
                    TRACE_RECV, root, struct=sent_struct, thread=receiver.ident
                )
            sender.reservation.difference_update(live)
            receiver.reservation.update(live)
            sender.inbox = UNIT
            sender.state = READY
            sender.pending = None
            receiver.inbox = root
            receiver.state = READY
            receiver.pending = None


# ---------------------------------------------------------------------------
# Engine selection and single-threaded convenience
# ---------------------------------------------------------------------------


def _make_engine(
    engine: str,
    program: ast.Program,
    heap: Heap,
    reservation: Set[Loc],
    check_reservations: bool,
    disconnect: str,
    preemptive: bool,
    max_steps: Optional[int] = None,
):
    """Construct the evaluation engine for one thread.

    ``tree`` is this module's recursive-generator :class:`Interpreter`;
    ``ir`` compiles the program to bytecode and runs it on
    :class:`repro.ir.engine.IREngine` (same generator protocol, same
    exceptions, same trace events).
    """
    if engine == "tree":
        return Interpreter(
            program,
            heap,
            reservation,
            check_reservations=check_reservations,
            disconnect=disconnect,
            preemptive=preemptive,
        )
    if engine == "ir":
        from ..ir.engine import IREngine

        return IREngine(
            program,
            heap,
            reservation,
            check_reservations=check_reservations,
            disconnect=disconnect,
            preemptive=preemptive,
            max_steps=max_steps,
        )
    raise ValueError(f"unknown engine {engine!r}; expected 'tree' or 'ir'")


def run_function(
    program: ast.Program,
    name: str,
    args: Iterable[RuntimeValue] = (),
    heap: Optional[Heap] = None,
    reservation: Optional[Set[Loc]] = None,
    check_reservations: bool = True,
    disconnect: str = "efficient",
    sink_sends: bool = False,
    seed: Optional[int] = None,
    max_steps: Optional[int] = None,
    engine: str = "tree",
) -> Tuple[RuntimeValue, Interpreter]:
    """Run a function to completion on a single thread.

    ``send``/``recv`` normally require a :class:`Machine`; with
    ``sink_sends=True`` a send instead delivers to an implicit sink thread
    (the live set simply leaves this thread's reservation), which is how
    single-threaded harnesses exercise send-containing programs.

    A single thread has no scheduling nondeterminism, so ``seed`` changes
    nothing about the run — it is recorded in the telemetry metadata
    (``machine.seed``) so single- and multi-threaded reproduction
    instructions carry the same fields.

    ``engine`` selects the evaluator: the tree-walking interpreter
    (default) or the compiled bytecode engine (``"ir"``).  The IR engine
    enforces ``max_steps`` inside its dispatch loop, so it needs no
    preemptive yielding for budgets.

    Returns (result, interpreter) so callers can inspect the heap,
    reservation, and statistics.
    """
    heap = heap if heap is not None else Heap()
    if reservation is None:
        reservation = set(heap.locations())
    # A step budget needs the tree interpreter to yield control per
    # evaluation step; without one the generator only surfaces at
    # send/recv, exactly as before (so budget-free runs are bit-for-bit
    # unchanged).  The IR engine checks its budget internally instead.
    interp = _make_engine(
        engine,
        program,
        heap,
        reservation,
        check_reservations=check_reservations,
        disconnect=disconnect,
        preemptive=max_steps is not None and engine == "tree",
        max_steps=max_steps,
    )
    gen = interp.call(name, args)
    tel = _telemetry()
    reads0, writes0 = heap.reads, heap.writes
    span = tel.span(f"machine.fn.{name}") if tel.enabled else None
    if span is not None:
        span.__enter__()
    try:
        event = None
        while True:
            if event is not None and event[0] == EV_SEND:
                if not sink_sends:
                    raise MachineError(
                        "run_function cannot service send/recv; use Machine"
                    )
                _kind, _struct, _root, live = event
                interp.reservation.difference_update(live)
                event = gen.send(UNIT)
                continue
            event = next(gen)
            if max_steps is not None and interp.stats.steps > max_steps:
                gen.close()
                raise StepLimitExceeded(
                    f"step budget exceeded ({max_steps} steps)"
                )
            if event[0] == EV_RECV:
                raise MachineError(
                    "run_function cannot service recv; use Machine"
                )
    except StopIteration as stop:
        return stop.value, interp
    finally:
        if span is not None:
            span.__exit__(None, None, None)
        if tel.enabled:
            publish_thread_stats(interp.stats)
            tel.inc("machine.heap_reads", heap.reads - reads0)
            tel.inc("machine.heap_writes", heap.writes - writes0)
            tel.counter("machine.heap_objects").value = len(heap)
            if seed is not None:
                tel.set_gauge("machine.seed", seed)
