"""Small-step operational semantics (fig 7) as an explicit CEK machine.

The generator-based :mod:`repro.runtime.machine` is convenient but big-step
per expression; this module implements the paper's actual presentation: a
configuration ``(d, h, s, e)`` — reservation, heap, stack, expression —
advanced one transition at a time by :meth:`Config.step`.  Continuations
are an explicit frame stack, so there is no Python recursion: million-step
executions and deeply recursive FCL functions run in constant Python stack.

Every variable use, field read, and field write performs the reservation
check of rules E2/E5A/E7A/E8 (when enabled); a failed check raises
:class:`~repro.runtime.machine.ReservationViolation` — the operational
"stuck" state.  ``send``/``recv`` yield :data:`BLOCKED_SEND` /
:data:`BLOCKED_RECV` statuses that :class:`SmallStepMachine` pairs up per
EC3 (fig 15).

Tests assert lock-step agreement with the big-step interpreter (identical
results *and* identical heap read/write traffic) and run invariant audits
at step granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import random

from ..lang import ast
from .disconnect import efficient_disconnected, naive_disconnected
from .heap import Heap
from .machine import DeadlockError, MachineError, ReservationViolation
from .values import NONE, UNIT, Loc, RuntimeValue, is_loc

# Thread statuses.
RUNNING = "running"
DONE = "done"
BLOCKED_SEND = "blocked_send"
BLOCKED_RECV = "blocked_recv"


class Env:
    """A chain of block scopes within one function frame."""

    __slots__ = ("scopes",)

    def __init__(self, initial: Optional[Dict[str, RuntimeValue]] = None):
        self.scopes: List[Dict[str, RuntimeValue]] = [dict(initial or {})]

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def bind(self, name: str, value: RuntimeValue) -> None:
        self.scopes[-1][name] = value

    def lookup(self, name: str) -> RuntimeValue:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        raise MachineError(f"unbound variable {name!r} at run time")

    def assign(self, name: str, value: RuntimeValue) -> None:
        for scope in reversed(self.scopes):
            if name in scope:
                scope[name] = value
                return
        raise MachineError(f"assignment to unbound variable {name!r}")


# ---------------------------------------------------------------------------
# Continuation frames
# ---------------------------------------------------------------------------


@dataclass
class SeqK:
    """Evaluating statement ``index`` of a block; scope pops at the end."""

    block: ast.Block
    index: int


@dataclass
class ScopePopK:
    """Restore a block scope, passing the block's value through."""

    value_is_unit: bool  # blocks ending in a binding yield unit


@dataclass
class IsNoneK:
    pass


@dataclass
class IsSomeK:
    pass


@dataclass
class UnopK:
    op: str


@dataclass
class BinopLK:
    op: str
    right: ast.Expr


@dataclass
class BinopRK:
    op: str
    left: RuntimeValue


@dataclass
class LetBindK:
    name: str


@dataclass
class LetSomeK:
    node: ast.LetSome


@dataclass
class LetSomePopK:
    """Pop the scope introduced for a matched let-some binding."""


@dataclass
class AssignVarK:
    name: str


@dataclass
class FieldReadK:
    fieldname: str


@dataclass
class AssignFieldBaseK:
    fieldname: str
    value_expr: ast.Expr


@dataclass
class AssignFieldValK:
    loc: Loc
    fieldname: str


@dataclass
class IfK:
    node: ast.If


@dataclass
class IfDiscLK:
    node: ast.IfDisconnected


@dataclass
class IfDiscRK:
    node: ast.IfDisconnected
    left: Loc


@dataclass
class WhileK:
    node: ast.While


@dataclass
class CallK:
    fdef: ast.FuncDef
    args_done: List[RuntimeValue]
    remaining: List[ast.Expr]


@dataclass
class RetK:
    env: Env


@dataclass
class NewK:
    struct: str
    names: List[str]
    values: List[RuntimeValue]
    remaining: List[ast.Expr]


@dataclass
class SendK:
    pass


Frame = object


class Config:
    """One thread's small-step configuration ``(d, h, s, e)`` plus the
    continuation stack."""

    def __init__(
        self,
        program: ast.Program,
        heap: Heap,
        reservation: Set[Loc],
        func: str,
        args: Sequence[RuntimeValue],
        check_reservations: bool = True,
        disconnect: str = "efficient",
    ):
        self.program = program
        self.heap = heap
        self.reservation = reservation
        self.check_reservations = check_reservations
        self._disconnected = (
            efficient_disconnected if disconnect == "efficient" else naive_disconnected
        )
        # Verified-erasure fast path (§3.2): guard dispatch chosen once at
        # construction, mirroring Interpreter.
        self._guard = self._guard_checked if check_reservations else self._guard_erased
        fdef = program.func(func)
        if len(fdef.params) != len(list(args)):
            raise MachineError(f"{func}: arity mismatch")
        for value in args:
            if is_loc(value):
                self._guard(value)
        self.env = Env({p.name: a for p, a in zip(fdef.params, args)})
        self.kont: List[Frame] = []
        #: Either ("eval", expr) or ("apply", value).
        self.control: Tuple = ("eval", fdef.body)
        self.status = RUNNING
        self.result: Optional[RuntimeValue] = None
        self.steps = 0
        # Rendezvous scratch.
        self.pending_send: Optional[Tuple[str, Loc, Set[Loc]]] = None
        self.pending_recv_struct: Optional[str] = None

    # -- dynamic reservation checks (E2, E5A, E7A, E8) ------------------------

    def _guard_checked(self, value: RuntimeValue) -> RuntimeValue:
        if is_loc(value):
            if value not in self.reservation:
                raise ReservationViolation(
                    f"access to {value} outside the thread's reservation"
                )
        return value

    @staticmethod
    def _guard_erased(value: RuntimeValue) -> RuntimeValue:
        return value

    # -- the transition function ------------------------------------------------

    def step(self) -> str:
        """Perform one small-step transition; returns the new status."""
        if self.status != RUNNING:
            return self.status
        self.steps += 1
        kind = self.control[0]
        if kind == "eval":
            self._step_eval(self.control[1])
        else:
            self._step_apply(self.control[1])
        return self.status

    def run(self, max_steps: int = 10_000_000) -> RuntimeValue:
        """Drive a single thread to completion (no send/recv)."""
        for _ in range(max_steps):
            status = self.step()
            if status == DONE:
                return self.result
            if status in (BLOCKED_SEND, BLOCKED_RECV):
                raise MachineError(
                    "single-threaded run cannot service send/recv"
                )
        raise MachineError("step budget exhausted")

    # -- eval transitions ---------------------------------------------------------

    def _step_eval(self, node: ast.Expr) -> None:
        if isinstance(node, ast.IntLit):
            self._apply(node.value)
        elif isinstance(node, ast.BoolLit):
            self._apply(node.value)
        elif isinstance(node, ast.UnitLit):
            self._apply(UNIT)
        elif isinstance(node, ast.NoneLit):
            self._apply(NONE)
        elif isinstance(node, ast.VarRef):
            self._apply(self._guard(self.env.lookup(node.name)))  # E2
        elif isinstance(node, ast.SomeExpr):
            self.control = ("eval", node.inner)  # some(v) ≡ v
        elif isinstance(node, ast.IsNone):
            self.kont.append(IsNoneK())
            self.control = ("eval", node.inner)
        elif isinstance(node, ast.IsSome):
            self.kont.append(IsSomeK())
            self.control = ("eval", node.inner)
        elif isinstance(node, ast.Unop):
            self.kont.append(UnopK(node.op))
            self.control = ("eval", node.inner)
        elif isinstance(node, ast.Binop):
            self.kont.append(BinopLK(node.op, node.right))
            self.control = ("eval", node.left)
        elif isinstance(node, ast.Block):
            self.env.push()
            if not node.body:
                self.kont.append(ScopePopK(value_is_unit=True))
                self._apply(UNIT)
            else:
                self.kont.append(SeqK(node, 0))
                self.control = ("eval", node.body[0])
        elif isinstance(node, ast.LetBind):
            self.kont.append(LetBindK(node.name))
            self.control = ("eval", node.init)
        elif isinstance(node, ast.LetSome):
            self.kont.append(LetSomeK(node))
            self.control = ("eval", node.scrutinee)
        elif isinstance(node, ast.Assign):
            if isinstance(node.target, ast.VarRef):
                self.kont.append(AssignVarK(node.target.name))
                self.control = ("eval", node.value)
            else:
                target: ast.FieldRef = node.target
                self.kont.append(
                    AssignFieldBaseK(target.fieldname, node.value)
                )
                self.control = ("eval", target.base)
        elif isinstance(node, ast.FieldRef):
            self.kont.append(FieldReadK(node.fieldname))
            self.control = ("eval", node.base)
        elif isinstance(node, ast.If):
            self.kont.append(IfK(node))
            self.control = ("eval", node.cond)
        elif isinstance(node, ast.IfDisconnected):
            self.kont.append(IfDiscLK(node))
            self.control = ("eval", node.left)
        elif isinstance(node, ast.While):
            self.kont.append(WhileK(node))
            self.control = ("eval", node.cond)
        elif isinstance(node, ast.Call):
            fdef = self.program.func(node.func)
            if not node.args:
                self._enter_function(fdef, [])
            else:
                self.kont.append(CallK(fdef, [], list(node.args[1:])))
                self.control = ("eval", node.args[0])
        elif isinstance(node, ast.New):
            names = list(node.inits.keys())
            if not names:
                self._apply(self._allocate(node.struct, [], []))
            else:
                exprs = list(node.inits.values())
                self.kont.append(NewK(node.struct, names, [], exprs[1:]))
                self.control = ("eval", exprs[0])
        elif isinstance(node, ast.Send):
            self.kont.append(SendK())
            self.control = ("eval", node.value)
        elif isinstance(node, ast.Recv):
            self.pending_recv_struct = ast.strip_maybe(node.ty).name
            self.status = BLOCKED_RECV
        else:
            raise MachineError(f"cannot step {type(node).__name__}")

    # -- apply transitions -----------------------------------------------------------

    def _apply(self, value: RuntimeValue) -> None:
        self.control = ("apply", value)
        if not self.kont:
            self.status = DONE
            self.result = value

    def _step_apply(self, value: RuntimeValue) -> None:
        if not self.kont:
            self.status = DONE
            self.result = value
            return
        frame = self.kont.pop()

        if isinstance(frame, SeqK):
            entry = frame.block.body[frame.index]
            is_last = frame.index == len(frame.block.body) - 1
            if is_last:
                unit_block = isinstance(entry, ast.LetBind)
                self.kont.append(ScopePopK(value_is_unit=unit_block))
                self._apply(value)
            else:
                self.kont.append(SeqK(frame.block, frame.index + 1))
                self.control = ("eval", frame.block.body[frame.index + 1])
        elif isinstance(frame, ScopePopK):
            self.env.pop()
            self._apply(UNIT if frame.value_is_unit else value)
        elif isinstance(frame, IsNoneK):
            self._apply(value is NONE)
        elif isinstance(frame, IsSomeK):
            self._apply(value is not NONE)
        elif isinstance(frame, UnopK):
            self._apply((not value) if frame.op == "!" else -value)
        elif isinstance(frame, BinopLK):
            self.kont.append(BinopRK(frame.op, value))
            self.control = ("eval", frame.right)
        elif isinstance(frame, BinopRK):
            from .machine import Interpreter

            self._apply(Interpreter._binop(frame.op, frame.left, value))
        elif isinstance(frame, LetBindK):
            self.env.bind(frame.name, value)
            self._apply(UNIT)
        elif isinstance(frame, LetSomeK):
            node = frame.node
            if value is NONE:
                if node.else_block is None:
                    self._apply(UNIT)
                else:
                    self.control = ("eval", node.else_block)
            else:
                self.env.push()
                self.env.bind(node.name, value)
                self.kont.append(LetSomePopK())
                self.control = ("eval", node.then_block)
        elif isinstance(frame, LetSomePopK):
            self.env.pop()
            self._apply(value)
        elif isinstance(frame, AssignVarK):
            self.env.assign(frame.name, value)
            self._apply(UNIT)
        elif isinstance(frame, FieldReadK):
            loc = self._as_loc(value)
            self._guard(loc)  # E5A
            read = self.heap.read_field(loc, frame.fieldname)
            self._apply(self._guard(read) if is_loc(read) else read)
        elif isinstance(frame, AssignFieldBaseK):
            loc = self._as_loc(value)
            self.kont.append(AssignFieldValK(loc, frame.fieldname))
            self.control = ("eval", frame.value_expr)
        elif isinstance(frame, AssignFieldValK):
            self._guard(frame.loc)  # E7A
            if is_loc(value):
                self._guard(value)
            self.heap.write_field(frame.loc, frame.fieldname, value)
            self._apply(UNIT)
        elif isinstance(frame, IfK):
            node = frame.node
            if value:
                self.control = ("eval", node.then_block)
            elif node.else_block is not None:
                self.control = ("eval", node.else_block)
            else:
                self._apply(UNIT)
        elif isinstance(frame, IfDiscLK):
            self.kont.append(IfDiscRK(frame.node, self._as_loc(value)))
            self.control = ("eval", frame.node.right)
        elif isinstance(frame, IfDiscRK):
            left = frame.left
            right = self._as_loc(value)
            self._guard(left)
            self._guard(right)
            disconnected, _stats = self._disconnected(self.heap, left, right)
            node = frame.node
            if disconnected:  # E15A
                self.control = ("eval", node.then_block)
            elif node.else_block is not None:  # E15B
                self.control = ("eval", node.else_block)
            else:
                self._apply(UNIT)
        elif isinstance(frame, WhileK):
            node = frame.node
            if value:
                # Evaluate the body, then re-evaluate the condition.
                self.kont.append(WhileK(node))
                self.kont.append(_WhileBodyK(node))
                self.control = ("eval", node.body)
            else:
                self._apply(UNIT)
        elif isinstance(frame, _WhileBodyK):
            # Body finished; re-evaluate the condition (WhileK is beneath).
            self.control = ("eval", frame.node.cond)
        elif isinstance(frame, CallK):
            frame.args_done.append(value)
            if frame.remaining:
                next_arg = frame.remaining.pop(0)
                self.kont.append(frame)
                self.control = ("eval", next_arg)
            else:
                self._enter_function(frame.fdef, frame.args_done)
        elif isinstance(frame, RetK):
            self.env = frame.env
            self._apply(value)
        elif isinstance(frame, NewK):
            frame.values.append(value)
            if frame.remaining:
                next_init = frame.remaining.pop(0)
                self.kont.append(frame)
                self.control = ("eval", next_init)
            else:
                self._apply(
                    self._allocate(frame.struct, frame.names, frame.values)
                )
        elif isinstance(frame, SendK):
            root = self._as_loc(value)
            live = self.heap.live_set(root)
            if self.check_reservations and not live <= self.reservation:
                raise ReservationViolation(
                    "send: the live set leaks outside the sender's reservation"
                )
            self.pending_send = (
                self.heap.obj(root).struct.name,
                root,
                live,
            )
            self.status = BLOCKED_SEND
        else:
            raise MachineError(f"unknown frame {type(frame).__name__}")

    # -- helpers -------------------------------------------------------------------------

    def _enter_function(self, fdef: ast.FuncDef, args: List[RuntimeValue]) -> None:
        if len(args) != len(fdef.params):
            raise MachineError(f"{fdef.name}: arity mismatch")
        self.kont.append(RetK(self.env))
        self.env = Env({p.name: a for p, a in zip(fdef.params, args)})
        self.control = ("eval", fdef.body)

    def _allocate(
        self, struct: str, names: List[str], values: List[RuntimeValue]
    ) -> Loc:
        sdef = self.program.struct(struct)
        loc = self.heap.alloc(sdef, dict(zip(names, values)))
        self.reservation.add(loc)
        return loc

    @staticmethod
    def _as_loc(value: RuntimeValue) -> Loc:
        if not is_loc(value):
            raise MachineError(
                f"expected an object reference, got {value!r}"
            )
        return value

    # -- rendezvous completion (driven by the machine) --------------------------------

    def complete_send(self) -> None:
        assert self.pending_send is not None
        _struct, _root, live = self.pending_send
        self.reservation.difference_update(live)
        self.pending_send = None
        self.status = RUNNING
        self._apply(UNIT)

    def complete_recv(self, root: Loc, live: Set[Loc]) -> None:
        self.reservation.update(live)
        self.pending_recv_struct = None
        self.status = RUNNING
        self._apply(root)


@dataclass
class _WhileBodyK:
    node: ast.While


# ---------------------------------------------------------------------------
# Concurrent small-step machine
# ---------------------------------------------------------------------------


class SmallStepMachine:
    """n-tuple of configurations over one shared heap (§7)."""

    def __init__(
        self,
        program: ast.Program,
        check_reservations: bool = True,
        disconnect: str = "efficient",
        seed: Optional[int] = None,
        audit_every: int = 0,
    ):
        """``audit_every=n`` re-checks the §6 invariants (pairwise-disjoint
        reservations, exact stored refcounts) every n scheduler steps —
        an executable form of preservation, used by the soundness tests."""
        self.program = program
        self.heap = Heap()
        self.check_reservations = check_reservations
        self.disconnect = disconnect
        self.rng = random.Random(seed)
        self.configs: List[Config] = []
        self.audit_every = audit_every
        self.audits = 0

    def spawn(self, func: str, args: Sequence[RuntimeValue] = ()) -> Config:
        reservation: Set[Loc] = set()
        for value in args:
            if is_loc(value):
                reservation |= self.heap.live_set(value)
        config = Config(
            self.program,
            self.heap,
            reservation,
            func,
            args,
            check_reservations=self.check_reservations,
            disconnect=self.disconnect,
        )
        self.configs.append(config)
        return config

    def reservations_disjoint(self) -> bool:
        seen: Set[Loc] = set()
        for config in self.configs:
            if seen & config.reservation:
                return False
            seen |= config.reservation
        return True

    def run(self, max_steps: int = 50_000_000) -> None:
        for tick in range(max_steps):
            self._match_rendezvous()
            runnable = [c for c in self.configs if c.status == RUNNING]
            if not runnable:
                blocked = [
                    c
                    for c in self.configs
                    if c.status in (BLOCKED_SEND, BLOCKED_RECV)
                ]
                if not blocked:
                    return
                states = ", ".join(
                    f"config {i}: {c.status}"
                    for i, c in enumerate(self.configs)
                    if c.status in (BLOCKED_SEND, BLOCKED_RECV)
                )
                raise DeadlockError(f"all configurations blocked — {states}")
            config = self.rng.choice(runnable)
            config.step()
            if self.audit_every and tick % self.audit_every == 0:
                self._audit()
        raise MachineError("scheduler step budget exhausted")

    def _audit(self) -> None:
        """Preservation, executably: the §6 invariants after a step."""
        from ..analysis.invariants import (
            InvariantViolation,
            check_refcounts,
        )

        self.audits += 1
        if not self.reservations_disjoint():
            raise InvariantViolation("reservations overlap after a step")
        check_refcounts(self.heap)

    def _match_rendezvous(self) -> None:
        senders = [c for c in self.configs if c.status == BLOCKED_SEND]
        receivers = [c for c in self.configs if c.status == BLOCKED_RECV]
        for sender in senders:
            struct, root, live = sender.pending_send
            matching = [
                r for r in receivers if r.pending_recv_struct == struct
            ]
            if not matching:
                continue
            receiver = self.rng.choice(matching)
            receivers.remove(receiver)
            sender.complete_send()
            receiver.complete_recv(root, live)


def run_function_smallstep(
    program: ast.Program,
    name: str,
    args: Sequence[RuntimeValue] = (),
    heap: Optional[Heap] = None,
    check_reservations: bool = True,
    disconnect: str = "efficient",
) -> Tuple[RuntimeValue, Config]:
    """Single-threaded small-step execution to completion."""
    heap = heap if heap is not None else Heap()
    config = Config(
        program,
        heap,
        set(heap.locations()),
        name,
        list(args),
        check_reservations=check_reservations,
        disconnect=disconnect,
    )
    return config.run(), config
