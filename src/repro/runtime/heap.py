"""The shared run-time heap, with the stored reference counts of §5.2.

Each object carries a *stored reference count*: the number of immediate heap
references held in **non-iso** fields of other objects (or itself).  Per the
paper, the count is updated *only* on field assignment — never on local
variable binds, argument passing, or sends — making it much lighter than a
conventional reference count.  ``if disconnected`` compares these counts
with traversal counts to certify disconnection without exploring the larger
side (see :mod:`repro.runtime.disconnect`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Set

from ..lang import ast
from .values import NONE, UNIT, Loc, RuntimeValue, is_loc


@dataclass
class HeapObject:
    """A struct instance."""

    struct: ast.StructDef
    fields: Dict[str, RuntimeValue]
    #: Stored reference count (§5.2): incoming non-iso heap references.
    stored_refcount: int = 0

    def iso_fields(self) -> Iterator[str]:
        for decl in self.struct.fields:
            if decl.is_iso:
                yield decl.name

    def non_iso_fields(self) -> Iterator[str]:
        for decl in self.struct.fields:
            if not decl.is_iso:
                yield decl.name


class HeapError(Exception):
    """Access to a missing location (a runtime bug, not a data race)."""


#: Alloc-plan markers: a non-nullable same-struct field defaults to a self
#: reference; any other struct-typed field has no default.
_SELF_REF = object()
_REQUIRED = object()


def _alloc_plan(sdef: ast.StructDef):
    """Per-struct allocation plan ``(name, default, is_iso)`` cached on the
    struct definition, so :meth:`Heap.alloc` does not re-derive defaults
    from the declarations on every allocation."""
    try:
        return sdef._alloc_plan  # type: ignore[attr-defined]
    except AttributeError:
        plan = []
        for decl in sdef.fields:
            if isinstance(decl.ty, ast.MaybeType):
                default = NONE
            elif decl.ty == ast.INT:
                default = 0
            elif decl.ty == ast.BOOL:
                default = False
            elif decl.ty == ast.UNIT:
                default = UNIT
            elif (
                isinstance(decl.ty, ast.StructType)
                and decl.ty.name == sdef.name
            ):
                default = _SELF_REF
            else:
                default = _REQUIRED
            plan.append((decl.name, default, decl.is_iso))
        sdef._alloc_plan = plan  # type: ignore[attr-defined]
        return plan


class Heap:
    """The shared heap of a (possibly concurrent) machine configuration.

    Counters ``reads``/``writes`` record field-level heap traffic and feed
    the E5/E6 benchmarks.
    """

    def __init__(self, tracer=None) -> None:
        self._objects: Dict[Loc, HeapObject] = {}
        self._next = 0
        self.reads = 0
        self.writes = 0
        #: Optional repro.runtime.trace.Tracer receiving every heap event.
        self.tracer = tracer

    def __contains__(self, loc: Loc) -> bool:
        return loc in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def locations(self) -> Iterable[Loc]:
        return self._objects.keys()

    def obj(self, loc: Loc) -> HeapObject:
        try:
            return self._objects[loc]
        except KeyError:
            raise HeapError(f"dangling location {loc}") from None

    # -- allocation -----------------------------------------------------------

    def alloc(self, sdef: ast.StructDef, inits: Dict[str, RuntimeValue]) -> Loc:
        """Allocate an object.  Missing fields default to none/0/false/unit,
        or to a self reference for a non-nullable field of the same struct
        type (the size-1 circular dll of fig 3)."""
        loc = Loc(self._next)
        self._next += 1
        fields: Dict[str, RuntimeValue] = {}
        obj = HeapObject(sdef, fields)
        self._objects[loc] = obj
        for decl_name, default, is_iso in _alloc_plan(sdef):
            if decl_name in inits:
                value: RuntimeValue = inits[decl_name]
            elif default is _SELF_REF:
                value = loc
            elif default is _REQUIRED:
                raise HeapError(
                    f"field {sdef.name}.{decl_name} has no default and no "
                    "initializer"
                )
            else:
                value = default
            fields[decl_name] = value
            if not is_iso and type(value) is Loc:
                self.obj(value).stored_refcount += 1
        if self.tracer is not None:
            self.tracer.record(
                "alloc", loc, struct=sdef.name, fields=dict(fields)
            )
        return loc

    # -- field access -----------------------------------------------------------

    def read_field(self, loc: Loc, fieldname: str) -> RuntimeValue:
        self.reads += 1
        value = self.obj(loc).fields[fieldname]
        if self.tracer is not None:
            self.tracer.record("read", loc, fieldname=fieldname, value=value)
        return value

    def write_field(self, loc: Loc, fieldname: str, value: RuntimeValue) -> None:
        """Write a field, maintaining stored reference counts for non-iso
        references (the only time counts are touched, per §5.2)."""
        self.writes += 1
        obj = self.obj(loc)
        decl = obj.struct.field_decl(fieldname)
        old = obj.fields[fieldname]
        if self.tracer is not None:
            self.tracer.record(
                "write", loc, fieldname=fieldname, value=value, old=old
            )
        if not decl.is_iso:
            if is_loc(old) and old in self._objects:
                self._objects[old].stored_refcount -= 1
            if is_loc(value):
                self.obj(value).stored_refcount += 1
        obj.fields[fieldname] = value

    # -- reachability -----------------------------------------------------------

    def live_set(self, root: Loc) -> Set[Loc]:
        """All locations transitively reachable from ``root`` (crossing both
        iso and non-iso fields) — the ``live-set`` of fig 15 used by send."""
        seen: Set[Loc] = set()
        stack: List[Loc] = [root]
        while stack:
            loc = stack.pop()
            if loc in seen:
                continue
            seen.add(loc)
            for value in self.obj(loc).fields.values():
                if is_loc(value) and value not in seen:
                    stack.append(value)
        return seen

    def recompute_refcounts(self) -> Dict[Loc, int]:
        """Recount all non-iso references from scratch (used by the
        invariant audits to validate incremental maintenance)."""
        counts: Dict[Loc, int] = {loc: 0 for loc in self._objects}
        for obj in self._objects.values():
            for decl in obj.struct.fields:
                if decl.is_iso:
                    continue
                value = obj.fields[decl.name]
                if is_loc(value) and value in counts:
                    counts[value] += 1
        return counts
