"""Run-time values of FCL.

Struct instances live in the heap and are referenced by :class:`Loc`;
primitives are immediate.  ``maybe`` is transparent: ``none`` is the
:data:`NONE` sentinel and ``some(v)`` is just ``v`` (nested maybes are ruled
out by the type grammar), which matches the paper's nullable-field reading
of ``T?``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Loc:
    """A heap location (object reference)."""

    ident: int

    def __str__(self) -> str:
        return f"ℓ{self.ident}"

    def __hash__(self) -> int:
        # Heap dict lookups key on Loc; hashing the ident directly is
        # equality-compatible and much cheaper than the generated
        # tuple-of-fields hash.
        return self.ident


class _Unit:
    _instance = None

    def __new__(cls) -> "_Unit":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "unit"


class _NoneValue:
    _instance = None

    def __new__(cls) -> "_NoneValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "none"

    def __bool__(self) -> bool:
        return False


#: The unit value.
UNIT = _Unit()
#: The empty maybe.
NONE = _NoneValue()

#: Anything an FCL expression can evaluate to.
RuntimeValue = Union[int, bool, Loc, _Unit, _NoneValue]


def is_none_value(value: RuntimeValue) -> bool:
    return value is NONE


def is_loc(value: RuntimeValue) -> bool:
    return isinstance(value, Loc)
