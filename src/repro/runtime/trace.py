"""Heap tracing: a bounded event log of allocations, reads, writes, and
message transfers.

Attach a :class:`Tracer` to a :class:`~repro.runtime.heap.Heap` and every
heap operation is recorded in a ring buffer — the tool you want when a
reservation violation fires and you need to know how the location got
where it is.  Events carry the id of the thread that performed them (the
:class:`~repro.runtime.machine.Machine` stamps ``current_thread`` before
advancing each thread), and rendezvous ``send``/``recv`` transfers are
recorded as their own event kinds, so interleaved traces are attributable.
Used by tests and available to examples/CLI users::

    tracer = Tracer(capacity=1000)
    heap = Heap(tracer=tracer)
    ...
    print(tracer.render(last=20))

``repro run FILE FN --trace-json events.jsonl`` exports the buffer as one
JSON object per event (see :meth:`TraceEvent.to_dict`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional

from .values import NONE, UNIT, Loc, RuntimeValue, is_loc

ALLOC = "alloc"
READ = "read"
WRITE = "write"
SEND = "send"
RECV = "recv"


@dataclass(frozen=True)
class TraceEvent:
    seq: int
    kind: str  # alloc | read | write | send | recv
    loc: Loc
    fieldname: Optional[str] = None
    value: Optional[RuntimeValue] = None
    old: Optional[RuntimeValue] = None
    struct: Optional[str] = None
    #: Initial field values of an alloc event (post-defaulting).
    fields: Optional[Dict[str, RuntimeValue]] = None
    #: Id of the thread that performed the operation (None outside a
    #: Machine, e.g. single-threaded run_function).
    thread: Optional[int] = None

    def render(self) -> str:
        who = "" if self.thread is None else f" [t{self.thread}]"
        if self.kind == ALLOC:
            inits = ""
            if self.fields:
                inits = (
                    " {"
                    + ", ".join(
                        f"{k} = {_show(v)}" for k, v in self.fields.items()
                    )
                    + "}"
                )
            return f"#{self.seq:<6d} alloc {self.loc} : {self.struct}{inits}{who}"
        if self.kind == READ:
            return (
                f"#{self.seq:<6d} read  {self.loc}.{self.fieldname} "
                f"→ {_show(self.value)}{who}"
            )
        if self.kind == SEND:
            return f"#{self.seq:<6d} send  {self.loc} : {self.struct}{who}"
        if self.kind == RECV:
            return f"#{self.seq:<6d} recv  {self.loc} : {self.struct}{who}"
        return (
            f"#{self.seq:<6d} write {self.loc}.{self.fieldname} "
            f"= {_show(self.value)} (was {_show(self.old)}){who}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able form: one flat object per event; locations become
        integers, unit/none become strings."""
        out: Dict[str, Any] = {
            "seq": self.seq,
            "kind": self.kind,
            "loc": self.loc.ident,
            "thread": self.thread,
        }
        if self.struct is not None:
            out["struct"] = self.struct
        if self.fieldname is not None:
            out["field"] = self.fieldname
        if self.kind == READ or self.kind == WRITE:
            out["value"] = _json_value(self.value)
        if self.kind == WRITE:
            out["old"] = _json_value(self.old)
        if self.fields is not None:
            out["fields"] = {
                name: _json_value(value) for name, value in self.fields.items()
            }
        return out


def _show(value: Optional[RuntimeValue]) -> str:
    if value is NONE:
        return "none"
    if value is UNIT:
        return "()"
    return str(value)


def _json_value(value: Optional[RuntimeValue]) -> Any:
    if is_loc(value):
        return {"loc": value.ident}
    if value is NONE:
        return "none"
    if value is UNIT:
        return "unit"
    return value


def _references(value: Optional[RuntimeValue], loc: Loc) -> bool:
    return is_loc(value) and value == loc


class Tracer:
    """Bounded heap-event recorder."""

    def __init__(self, capacity: int = 10_000):
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0
        #: Stamped onto recorded events; the Machine sets this to the
        #: ident of the thread it is about to advance.
        self.current_thread: Optional[int] = None
        #: Run-level reproduction metadata (e.g. the scheduler seed).  Not
        #: part of the event stream — exporters emit it as a leading
        #: ``{"meta": ...}`` line when non-empty.
        self.metadata: Dict[str, Any] = {}

    def record(self, event_kind: str, loc: Loc, **payload) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        payload.setdefault("thread", self.current_thread)
        self._events.append(
            TraceEvent(seq=self._seq, kind=event_kind, loc=loc, **payload)
        )
        self._seq += 1

    def events(
        self,
        kind: Optional[str] = None,
        loc: Optional[Loc] = None,
        fieldname: Optional[str] = None,
        thread: Optional[int] = None,
    ) -> List[TraceEvent]:
        """Events, optionally filtered by kind / location / field / thread."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if loc is not None and event.loc != loc:
                continue
            if fieldname is not None and event.fieldname != fieldname:
                continue
            if thread is not None and event.thread != thread:
                continue
            out.append(event)
        return out

    def history_of(self, loc: Loc) -> List[TraceEvent]:
        """Everything that ever happened to one location — including events
        whose *value* references it (how did this location get stored
        there?) and allocations whose initial field values reference it."""
        out = []
        for event in self._events:
            if (
                event.loc == loc
                or _references(event.value, loc)
                or (
                    event.fields is not None
                    and any(_references(v, loc) for v in event.fields.values())
                )
            ):
                out.append(event)
        return out

    def render(self, last: Optional[int] = None) -> str:
        events = list(self._events)
        if last is not None:
            events = events[-last:]
        lines = [event.render() for event in events]
        if self.dropped:
            lines.insert(0, f"... ({self.dropped} earlier events dropped)")
        return "\n".join(lines) if lines else "(no heap events)"

    def to_dicts(self) -> Iterable[Dict[str, Any]]:
        """All buffered events as JSON-able dicts (oldest first)."""
        return [event.to_dict() for event in self._events]

    def __len__(self) -> int:
        return len(self._events)
