"""Heap tracing: a bounded event log of allocations, reads, and writes.

Attach a :class:`Tracer` to a :class:`~repro.runtime.heap.Heap` and every
heap operation is recorded in a ring buffer — the tool you want when a
reservation violation fires and you need to know how the location got
where it is.  Used by tests and available to examples/CLI users::

    tracer = Tracer(capacity=1000)
    heap = Heap(tracer=tracer)
    ...
    print(tracer.render(last=20))
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

from .values import Loc, RuntimeValue, is_loc

ALLOC = "alloc"
READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class TraceEvent:
    seq: int
    kind: str  # alloc | read | write
    loc: Loc
    fieldname: Optional[str] = None
    value: Optional[RuntimeValue] = None
    old: Optional[RuntimeValue] = None
    struct: Optional[str] = None

    def render(self) -> str:
        if self.kind == ALLOC:
            return f"#{self.seq:<6d} alloc {self.loc} : {self.struct}"
        if self.kind == READ:
            return (
                f"#{self.seq:<6d} read  {self.loc}.{self.fieldname} "
                f"→ {_show(self.value)}"
            )
        return (
            f"#{self.seq:<6d} write {self.loc}.{self.fieldname} "
            f"= {_show(self.value)} (was {_show(self.old)})"
        )


def _show(value: Optional[RuntimeValue]) -> str:
    from .values import NONE, UNIT

    if value is NONE:
        return "none"
    if value is UNIT:
        return "()"
    return str(value)


class Tracer:
    """Bounded heap-event recorder."""

    def __init__(self, capacity: int = 10_000):
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0

    def record(self, event_kind: str, loc: Loc, **payload) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(seq=self._seq, kind=event_kind, loc=loc, **payload)
        )
        self._seq += 1

    def events(
        self,
        kind: Optional[str] = None,
        loc: Optional[Loc] = None,
        fieldname: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Events, optionally filtered by kind / location / field."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if loc is not None and event.loc != loc:
                continue
            if fieldname is not None and event.fieldname != fieldname:
                continue
            out.append(event)
        return out

    def history_of(self, loc: Loc) -> List[TraceEvent]:
        """Everything that ever happened to one location (also events whose
        *value* references it — how did this location get stored there?)."""
        out = []
        for event in self._events:
            if event.loc == loc or (is_loc(event.value) and event.value == loc):
                out.append(event)
        return out

    def render(self, last: Optional[int] = None) -> str:
        events = list(self._events)
        if last is not None:
            events = events[-last:]
        lines = [event.render() for event in events]
        if self.dropped:
            lines.insert(0, f"... ({self.dropped} earlier events dropped)")
        return "\n".join(lines) if lines else "(no heap events)"

    def __len__(self) -> int:
        return len(self._events)
