"""Dynamic semantics: heap, reservations, if-disconnected, concurrency."""

from .disconnect import DisconnectStats, efficient_disconnected, naive_disconnected
from .heap import Heap, HeapObject
from .machine import (
    DeadlockError,
    Interpreter,
    Machine,
    MachineError,
    ReservationViolation,
    Thread,
    run_function,
)
from .smallstep import (
    Config,
    SmallStepMachine,
    run_function_smallstep,
)
from .values import NONE, UNIT, Loc

__all__ = [
    "Heap",
    "HeapObject",
    "Machine",
    "Interpreter",
    "Thread",
    "run_function",
    "MachineError",
    "ReservationViolation",
    "DeadlockError",
    "efficient_disconnected",
    "naive_disconnected",
    "DisconnectStats",
    "Config",
    "SmallStepMachine",
    "run_function_smallstep",
    "NONE",
    "UNIT",
    "Loc",
]
