"""``repro top`` — a live terminal dashboard for a running daemon.

Polls the ``stats`` and ``metrics`` RPCs (no server-side support beyond
those two read-only methods) and renders request rates, per-method
p50/p99 latency, memo/cache hit ratios, and queue depth.  Rates come
from counter deltas between consecutive polls; quantiles come from the
histogram bucket counts in the ``repro-telemetry/2`` document, so the
server never stores raw observations.

Rendering is a pure function (:func:`render_top`) over two metric
documents and a stats payload — tested without a terminal or a server.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Optional

from . import telemetry as tel
from .api import ExitCode

#: Dispatch methods worth a latency row (control-plane methods are
#: answered inline and never hit the latency histograms).
_METHODS = ("check", "verify", "run", "batch")

_CLEAR = "\x1b[2J\x1b[H"


def _counters(doc: Dict[str, Any]) -> Dict[str, int]:
    return {name: int(v) for name, v in doc.get("counters", {}).items()}


def _method_totals(counters: Dict[str, int]) -> Dict[str, Dict[str, int]]:
    """``method -> {outcome -> count}`` from ``server.requests.*``."""
    out: Dict[str, Dict[str, int]] = {}
    prefix = "server.requests."
    for name, value in counters.items():
        if not name.startswith(prefix):
            continue
        rest = name[len(prefix):]
        method, _, outcome = rest.partition(".")
        if not outcome:
            continue
        out.setdefault(method, {})[outcome] = value
    return out


def _num(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}"


def render_top(
    stats: Dict[str, Any],
    doc: Dict[str, Any],
    prev_doc: Optional[Dict[str, Any]],
    interval: float,
    address: str = "",
) -> str:
    """One dashboard frame.  ``prev_doc`` (the previous poll's metrics
    document) enables the rate columns; on the first frame they show
    ``-``."""
    reg = tel.doc_to_registry(doc)
    counters = _counters(doc)
    prev = _counters(prev_doc) if prev_doc else None
    totals = _method_totals(counters)
    service = stats.get("service", {})

    total_requests = sum(
        count for outcomes in totals.values() for count in outcomes.values()
    )
    if prev is not None and interval > 0:
        prev_total = sum(_method_totals(prev).get(m, {}).get(o, 0)
                         for m, outcomes in totals.items() for o in outcomes)
        total_rate = f"{(total_requests - prev_total) / interval:6.1f}/s"
    else:
        total_rate = "     -"

    lines: List[str] = []
    lines.append(
        f"repro top — {address or '?'}   "
        f"uptime {stats.get('uptime_ms', 0) / 1000.0:.1f}s   "
        f"inflight {stats.get('inflight', 0)}   "
        f"queue depth {reg.gauge_value('server.queue_depth'):g}   "
        f"draining {'yes' if stats.get('draining') else 'no'}"
    )
    lines.append(f"requests {total_requests}   rate {total_rate.strip()}")
    lines.append("")
    lines.append(
        f"{'method':<8s} {'ok':>8s} {'err':>6s} {'rate/s':>8s} "
        f"{'p50 ms':>9s} {'p99 ms':>9s} {'mean ms':>9s}"
    )
    for method in _METHODS:
        outcomes = totals.get(method, {})
        ok = outcomes.get("ok", 0)
        err = sum(v for k, v in outcomes.items() if k != "ok")
        if prev is not None and interval > 0:
            prev_outcomes = _method_totals(prev).get(method, {})
            delta = sum(outcomes.values()) - sum(prev_outcomes.values())
            rate = f"{delta / interval:8.1f}"
        else:
            rate = f"{'-':>8s}"
        hist = reg.histograms.get(f"server.latency_ms.{method}")
        if hist is not None and hist.count:
            p50, p99, mean = hist.quantile(0.5), hist.quantile(0.99), hist.mean
        else:
            p50 = p99 = mean = None
        lines.append(
            f"{method:<8s} {ok:>8d} {err:>6d} {rate} "
            f"{_num(p50):>9s} {_num(p99):>9s} {_num(mean):>9s}"
        )
    lines.append("")

    fleet = stats.get("fleet")
    if fleet:
        inflight = fleet.get("inflight", [])
        lines.append(
            f"fleet {fleet.get('alive', 0)}/{fleet.get('workers', 0)} workers "
            f"alive   restarts {fleet.get('restarts', 0)}   "
            f"inflight {'/'.join(str(n) for n in inflight) or '-'}   "
            f"pids {','.join(str(p) for p in fleet.get('pids', []))}"
        )

    hits = int(service.get("memo_hits", 0))
    misses = int(service.get("memo_misses", 0))
    ratio = f"{100.0 * hits / (hits + misses):.1f}%" if hits + misses else "-"
    lines.append(
        f"memo {hits} hits / {misses} misses ({ratio} hit)   "
        f"sessions {service.get('sessions', 0)}   "
        f"entries {service.get('memo_entries', 0)}   "
        f"cache {service.get('cache_dir') or 'none'}"
    )
    cache_hit = counters.get("pipeline.cache.hit", 0)
    cache_miss = counters.get("pipeline.cache.miss", 0)
    if cache_hit or cache_miss:
        cratio = f"{100.0 * cache_hit / (cache_hit + cache_miss):.1f}%"
        lines.append(
            f"cert cache {cache_hit} hits / {cache_miss} misses ({cratio} hit)"
        )
    store_hit = counters.get("cache.hits", 0)
    store_miss = counters.get("cache.misses", 0)
    if store_hit or store_miss or counters.get("cache.evictions"):
        sratio = (
            f"{100.0 * store_hit / (store_hit + store_miss):.1f}%"
            if store_hit + store_miss
            else "-"
        )
        lines.append(
            f"cert store {store_hit} hits / {store_miss} misses "
            f"({sratio} hit)   evictions {counters.get('cache.evictions', 0)}   "
            f"entries {reg.gauge_value('cache.entries'):g}   "
            f"bytes {reg.gauge_value('cache.bytes'):g}"
        )
    overall = reg.histograms.get("server.latency_ms")
    if overall is not None and overall.count:
        lines.append(
            f"latency (all) n={overall.count} p50={_num(overall.quantile(0.5))} "
            f"p99={_num(overall.quantile(0.99))} max={_num(overall.max)} ms"
        )
    return "\n".join(lines)


def run_top(
    connect: str,
    interval: float = 2.0,
    once: bool = False,
    iterations: Optional[int] = None,
    out=None,
) -> int:
    """Poll + render until interrupted (or ``iterations`` frames)."""
    from .client import Client, ClientError, RemoteError

    out = out if out is not None else sys.stdout
    prev_doc: Optional[Dict[str, Any]] = None
    frame = 0
    try:
        with Client(connect, timeout=max(interval * 4, 10.0)) as client:
            while True:
                try:
                    stats = client.stats()
                    doc = client.metrics()
                except RemoteError as exc:
                    print(f"error: server rejected poll: {exc}", file=sys.stderr)
                    return int(ExitCode.RUNTIME_ERROR)
                text = render_top(stats, doc, prev_doc, interval, connect)
                if once or iterations is not None:
                    print(text, file=out)
                else:
                    print(_CLEAR + text, file=out, flush=True)
                prev_doc = doc
                frame += 1
                if once or (iterations is not None and frame >= iterations):
                    return int(ExitCode.OK)
                time.sleep(interval)
    except KeyboardInterrupt:
        return int(ExitCode.OK)
    except ClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return int(ExitCode.RUNTIME_ERROR)


__all__ = ["render_top", "run_top"]
