"""Abstract syntax tree for FCL.

Everything at the statement level is an *expression* (blocks yield the value
of their last entry), mirroring the paper's core expression language (fig 6).
Top-level declarations are ``struct`` and ``def`` forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .tokens import SYNTHETIC_SPAN, SourceSpan

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Type:
    """Base class for FCL types."""

    def is_maybe(self) -> bool:
        return isinstance(self, MaybeType)

    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    def is_prim(self) -> bool:
        return isinstance(self, PrimType)


@dataclass(frozen=True)
class PrimType(Type):
    """``int``, ``bool``, or ``unit``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class StructType(Type):
    """A named struct type."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MaybeType(Type):
    """``T?`` — a "maybe" of ``T``.  ``T`` itself may not be a maybe."""

    inner: Type

    def __post_init__(self) -> None:
        if isinstance(self.inner, MaybeType):
            raise ValueError("nested maybe types (T??) are not allowed")

    def __str__(self) -> str:
        return f"{self.inner}?"


INT = PrimType("int")
BOOL = PrimType("bool")
UNIT = PrimType("unit")


def strip_maybe(ty: Type) -> Type:
    """The payload type of a maybe, or the type itself."""
    return ty.inner if isinstance(ty, MaybeType) else ty


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of every expression node."""

    span: SourceSpan = field(default=SYNTHETIC_SPAN, kw_only=True, repr=False, compare=False)


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class UnitLit(Expr):
    pass


@dataclass
class NoneLit(Expr):
    """``none`` — the empty maybe.  Its payload type is inferred."""

    pass


@dataclass
class SomeExpr(Expr):
    """``some(e)`` — wraps a value into a maybe."""

    inner: Expr


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class FieldRef(Expr):
    """``base.field`` — reads a struct field."""

    base: Expr
    fieldname: str


@dataclass
class LetBind(Expr):
    """``let x = e`` — binds ``x`` until the end of the enclosing block."""

    name: str
    init: Expr


@dataclass
class LetSome(Expr):
    """``let some(x) = e in B1 else B2`` — maybe pattern match (fig 2)."""

    name: str
    scrutinee: Expr
    then_block: "Block"
    else_block: Optional["Block"]


@dataclass
class Assign(Expr):
    """``target = e`` where target is a variable or field path."""

    target: Expr  # VarRef or FieldRef
    value: Expr


@dataclass
class If(Expr):
    cond: Expr
    then_block: "Block"
    else_block: Optional["Block"]


@dataclass
class IfDisconnected(Expr):
    """``if disconnected(a, b) { ... } else { ... }`` (§2.2, fig 5)."""

    left: Expr
    right: Expr
    then_block: "Block"
    else_block: Optional["Block"]


@dataclass
class While(Expr):
    cond: Expr
    body: "Block"


@dataclass
class Call(Expr):
    func: str
    args: List[Expr]


@dataclass
class New(Expr):
    """``new T(f = e, ...)`` — allocate a struct in a fresh region."""

    struct: str
    inits: Dict[str, Expr]


@dataclass
class Send(Expr):
    """``send(e)`` — transmit e's reachable subgraph to another thread."""

    value: Expr


@dataclass
class Recv(Expr):
    """``recv(T)`` — receive a value of struct type T from another thread."""

    ty: Type


@dataclass
class IsNone(Expr):
    inner: Expr


@dataclass
class IsSome(Expr):
    inner: Expr


@dataclass
class Unop(Expr):
    op: str  # "!", "-"
    inner: Expr


@dataclass
class Binop(Expr):
    op: str  # + - * / % == != < > <= >= && ||
    left: Expr
    right: Expr


@dataclass
class Block(Expr):
    """``{ e1; e2; ... }`` — value is the last expression's value (unit if
    empty or if the last entry is a binding)."""

    body: List[Expr]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

#: A path used in function annotations: ("l", "hd") for l.hd, ("result",).
AnnotPath = Tuple[str, ...]


@dataclass
class FieldDecl:
    name: str
    ty: Type
    is_iso: bool
    span: SourceSpan = field(default=SYNTHETIC_SPAN, repr=False, compare=False)


@dataclass
class StructDef:
    name: str
    fields: List[FieldDecl]
    span: SourceSpan = field(default=SYNTHETIC_SPAN, repr=False, compare=False)

    def field_decl(self, name: str) -> FieldDecl:
        try:
            cache = self._decl_map
        except AttributeError:
            cache = self._decl_map = {f.name: f for f in self.fields}
        try:
            return cache[name]
        except KeyError:
            raise KeyError(
                f"struct {self.name} has no field {name!r}"
            ) from None

    def has_field(self, name: str) -> bool:
        return any(f.name == name for f in self.fields)


@dataclass
class Param:
    """A function parameter.  ``pinned`` marks parameters whose region
    carries only *partial* information (§4.7): the callee may read the
    parameter's non-iso state but may not focus anything in its region,
    and the call site does not have to empty the region's tracking
    context first — TS2 framing in surface form."""

    name: str
    ty: Type
    pinned: bool = False
    span: SourceSpan = field(default=SYNTHETIC_SPAN, repr=False, compare=False)


@dataclass
class FuncDef:
    """``def f(params) : ret consumes xs after: p ~ q { body }``.

    ``consumes`` lists parameters whose region is absent at output (§4.9);
    ``after`` equates regions of the listed paths at output; ``before``
    equates regions of parameters at input (an extension the paper's full
    function types support directly via shared input regions).
    """

    name: str
    params: List[Param]
    return_type: Type
    body: Block
    consumes: List[str] = field(default_factory=list)
    after: List[Tuple[AnnotPath, AnnotPath]] = field(default_factory=list)
    before: List[Tuple[AnnotPath, AnnotPath]] = field(default_factory=list)
    span: SourceSpan = field(default=SYNTHETIC_SPAN, repr=False, compare=False)

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"function {self.name} has no parameter {name!r}")


@dataclass
class Program:
    structs: Dict[str, StructDef]
    funcs: Dict[str, FuncDef]

    def struct(self, name: str) -> StructDef:
        try:
            return self.structs[name]
        except KeyError:
            raise KeyError(f"unknown struct {name!r}") from None

    def func(self, name: str) -> FuncDef:
        try:
            return self.funcs[name]
        except KeyError:
            raise KeyError(f"unknown function {name!r}") from None


def walk(expr: Expr) -> Sequence[Expr]:
    """Yield ``expr`` and all of its descendants, pre-order."""
    out = [expr]
    stack = [expr]
    while stack:
        node = stack.pop()
        children: List[Expr] = []
        if isinstance(node, SomeExpr):
            children = [node.inner]
        elif isinstance(node, FieldRef):
            children = [node.base]
        elif isinstance(node, LetBind):
            children = [node.init]
        elif isinstance(node, LetSome):
            children = [node.scrutinee, node.then_block]
            if node.else_block is not None:
                children.append(node.else_block)
        elif isinstance(node, Assign):
            children = [node.target, node.value]
        elif isinstance(node, If):
            children = [node.cond, node.then_block]
            if node.else_block is not None:
                children.append(node.else_block)
        elif isinstance(node, IfDisconnected):
            children = [node.left, node.right, node.then_block]
            if node.else_block is not None:
                children.append(node.else_block)
        elif isinstance(node, While):
            children = [node.cond, node.body]
        elif isinstance(node, Call):
            children = list(node.args)
        elif isinstance(node, New):
            children = list(node.inits.values())
        elif isinstance(node, Send):
            children = [node.value]
        elif isinstance(node, (IsNone, IsSome, Unop)):
            children = [node.inner]
        elif isinstance(node, Binop):
            children = [node.left, node.right]
        elif isinstance(node, Block):
            children = list(node.body)
        out.extend(children)
        stack.extend(children)
    return out
