"""Human-friendly diagnostics: source excerpts with caret markers.

Renders checker/parser errors the way a production compiler would::

    prog.fcl:6:3: type error: cannot send: variable 'd' is still used afterwards
      |
    6 |   send(d);
      |   ^^^^
"""

from __future__ import annotations

from typing import Optional

from .tokens import SourceSpan


def render_diagnostic(
    source: str,
    span: Optional[SourceSpan],
    message: str,
    filename: str = "<input>",
    kind: str = "error",
) -> str:
    """Format a message with a source excerpt when a span is available."""
    if span is None or span.line == 0:
        return f"{filename}: {kind}: {message}"
    lines = source.splitlines()
    header = f"{filename}:{span.line}:{span.column}: {kind}: {message}"
    if not (1 <= span.line <= len(lines)):
        return header
    text = lines[span.line - 1]
    gutter = str(span.line)
    pad = " " * len(gutter)
    width = max(span.end - span.start, 1)
    # Clamp the caret run to the visible line.  A span's column can land
    # past the end of its line (an error at EOL, or one whose token ends
    # at the newline); without the clamp the caret floats in space far
    # to the right of the excerpt.
    start_col = min(max(span.column - 1, 0), len(text))
    width = min(width, max(len(text) - start_col, 1))
    # Tabs in the excerpt expand to an unknowable width; align the caret
    # by mirroring the line's own whitespace into the caret gutter.
    lead = "".join(ch if ch == "\t" else " " for ch in text[:start_col])
    caret = lead + "^" * width
    return "\n".join(
        [
            header,
            f"{pad} |",
            f"{gutter} | {text}",
            f"{pad} | {caret}",
        ]
    )


def strip_location_prefix(message: str) -> str:
    """Error classes embed "line:col: " in str(); drop it when the span is
    rendered separately."""
    parts = message.split(": ", 1)
    if len(parts) == 2 and ":" in parts[0]:
        head = parts[0].split(":")
        if len(head) == 2 and all(p.isdigit() for p in head):
            return parts[1]
    return message
