"""The FCL surface language: tokens, lexer, AST, parser, pretty-printer."""

from . import ast
from .lexer import LexError, tokenize
from .parser import ParseError, parse_expr, parse_program
from .pretty import pretty_expr, pretty_func, pretty_program, pretty_struct

__all__ = [
    "ast",
    "tokenize",
    "LexError",
    "ParseError",
    "parse_expr",
    "parse_program",
    "pretty_expr",
    "pretty_func",
    "pretty_program",
    "pretty_struct",
]
