"""Hand-written lexer for FCL source text."""

from __future__ import annotations

from typing import Iterator, List

from .tokens import KEYWORDS, SourceSpan, Token, TokenKind

#: Multi-character operators, checked longest-first.
_TWO_CHAR_OPS = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NEQ,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPS = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    "?": TokenKind.QUESTION,
    "~": TokenKind.TILDE,
    "=": TokenKind.ASSIGN,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "!": TokenKind.NOT,
}


class LexError(Exception):
    """Raised on malformed input characters."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class Lexer:
    """Converts FCL source text into a token stream.

    Supports ``//`` line comments and ``/* ... */`` block comments.
    """

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens, terminated by a single EOF token."""
        while True:
            self._skip_trivia()
            if self._pos >= len(self._source):
                yield self._make(TokenKind.EOF, self._pos, "")
                return
            yield self._next_token()

    # -- internals -------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < len(self._source):
                if self._source[self._pos] == "\n":
                    self._line += 1
                    self._col = 1
                else:
                    self._col += 1
                self._pos += 1

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", self._line, self._col)
            else:
                return

    def _make(self, kind: TokenKind, start: int, text: str) -> Token:
        span = SourceSpan(start, start + len(text), self._line, self._col - len(text))
        return Token(kind, text, span)

    def _next_token(self) -> Token:
        start = self._pos
        ch = self._peek()

        if ch.isdigit():
            while self._peek().isdigit():
                self._advance()
            text = self._source[start : self._pos]
            return self._make(TokenKind.INT, start, text)

        if ch.isalpha() or ch == "_":
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self._source[start : self._pos]
            kind = KEYWORDS.get(text, TokenKind.IDENT)
            return self._make(kind, start, text)

        pair = self._source[self._pos : self._pos + 2]
        if pair in _TWO_CHAR_OPS:
            self._advance(2)
            return self._make(_TWO_CHAR_OPS[pair], start, pair)

        if ch in _ONE_CHAR_OPS:
            self._advance()
            return self._make(_ONE_CHAR_OPS[ch], start, ch)

        raise LexError(f"unexpected character {ch!r}", self._line, self._col)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a list (including trailing EOF)."""
    return list(Lexer(source).tokens())
