"""Pretty-printer for FCL ASTs.

``pretty(parse_program(src))`` re-parses to an equal AST (round-trip
property, tested with hypothesis-generated programs).
"""

from __future__ import annotations

from typing import List

from . import ast

_INDENT = "  "


def pretty_type(ty: ast.Type) -> str:
    return str(ty)


def pretty_program(program: ast.Program) -> str:
    chunks: List[str] = []
    for sdef in program.structs.values():
        chunks.append(pretty_struct(sdef))
    for fdef in program.funcs.values():
        chunks.append(pretty_func(fdef))
    return "\n\n".join(chunks) + "\n"


def pretty_struct(sdef: ast.StructDef) -> str:
    lines = [f"struct {sdef.name} {{"]
    for f in sdef.fields:
        iso = "iso " if f.is_iso else ""
        lines.append(f"{_INDENT}{iso}{f.name} : {pretty_type(f.ty)};")
    lines.append("}")
    return "\n".join(lines)


def pretty_func_header(fdef: ast.FuncDef) -> str:
    """The declared interface alone: name, params (with ``pinned``), return
    type, ``consumes``, and ``before``/``after`` relations.  This is the
    signature slice the pipeline cache hashes for callees."""
    params = ", ".join(
        f"{'pinned ' if p.pinned else ''}{p.name} : {pretty_type(p.ty)}"
        for p in fdef.params
    )
    header = f"def {fdef.name}({params}) : {pretty_type(fdef.return_type)}"
    if fdef.consumes:
        header += " consumes " + ", ".join(fdef.consumes)
    if fdef.before:
        rels = ", ".join(f"{_path(a)} ~ {_path(b)}" for a, b in fdef.before)
        header += f" before: {rels}"
    if fdef.after:
        rels = ", ".join(f"{_path(a)} ~ {_path(b)}" for a, b in fdef.after)
        header += f" after: {rels}"
    return header


def pretty_func(fdef: ast.FuncDef) -> str:
    return pretty_func_header(fdef) + " " + pretty_expr(fdef.body, 0)


def _path(path: ast.AnnotPath) -> str:
    return ".".join(path)


def pretty_expr(expr: ast.Expr, indent: int = 0) -> str:
    """Render an expression.  Blocks are multi-line; leaves are inline."""
    pad = _INDENT * indent
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.UnitLit):
        return "()"
    if isinstance(expr, ast.NoneLit):
        return "none"
    if isinstance(expr, ast.SomeExpr):
        return f"some({pretty_expr(expr.inner, indent)})"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.FieldRef):
        return f"{pretty_expr(expr.base, indent)}.{expr.fieldname}"
    if isinstance(expr, ast.LetBind):
        return f"let {expr.name} = {pretty_expr(expr.init, indent)}"
    if isinstance(expr, ast.LetSome):
        out = (
            f"let some({expr.name}) = {pretty_expr(expr.scrutinee, indent)} in "
            + pretty_expr(expr.then_block, indent)
        )
        if expr.else_block is not None:
            out += " else " + pretty_expr(expr.else_block, indent)
        return out
    if isinstance(expr, ast.Assign):
        return f"{pretty_expr(expr.target, indent)} = {pretty_expr(expr.value, indent)}"
    if isinstance(expr, ast.If):
        out = f"if ({pretty_expr(expr.cond, indent)}) " + pretty_expr(
            expr.then_block, indent
        )
        if expr.else_block is not None:
            out += " else " + pretty_expr(expr.else_block, indent)
        return out
    if isinstance(expr, ast.IfDisconnected):
        out = (
            f"if disconnected({pretty_expr(expr.left, indent)}, "
            f"{pretty_expr(expr.right, indent)}) "
            + pretty_expr(expr.then_block, indent)
        )
        if expr.else_block is not None:
            out += " else " + pretty_expr(expr.else_block, indent)
        return out
    if isinstance(expr, ast.While):
        return f"while ({pretty_expr(expr.cond, indent)}) " + pretty_expr(
            expr.body, indent
        )
    if isinstance(expr, ast.Call):
        args = ", ".join(pretty_expr(a, indent) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, ast.New):
        inits = ", ".join(
            f"{name} = {pretty_expr(e, indent)}" for name, e in expr.inits.items()
        )
        return f"new {expr.struct}({inits})"
    if isinstance(expr, ast.Send):
        return f"send({pretty_expr(expr.value, indent)})"
    if isinstance(expr, ast.Recv):
        return f"recv({pretty_type(expr.ty)})"
    if isinstance(expr, ast.IsNone):
        return f"is_none({pretty_expr(expr.inner, indent)})"
    if isinstance(expr, ast.IsSome):
        return f"is_some({pretty_expr(expr.inner, indent)})"
    if isinstance(expr, ast.Unop):
        return f"{expr.op}({pretty_expr(expr.inner, indent)})"
    if isinstance(expr, ast.Binop):
        left = _operand(expr.left, indent)
        right = _operand(expr.right, indent)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, ast.Block):
        if not expr.body:
            return "{ }"
        inner_pad = _INDENT * (indent + 1)
        lines = ["{"]
        for entry in expr.body:
            lines.append(f"{inner_pad}{pretty_expr(entry, indent + 1)};")
        lines.append(pad + "}")
        return "\n".join(lines)
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _operand(expr: ast.Expr, indent: int) -> str:
    """A binop operand.  Statement-headed expressions (``let``/``if``/
    ``while``/assignment) only parse at statement or parenthesized
    positions, never as bare operands — found by the differential fuzzer
    round-tripping shrunk programs — so they get explicit parens here."""
    text = pretty_expr(expr, indent)
    if isinstance(
        expr,
        (ast.LetBind, ast.LetSome, ast.If, ast.IfDisconnected, ast.While,
         ast.Assign),
    ):
        return f"({text})"
    return text
