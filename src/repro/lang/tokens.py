"""Token definitions for the Fearless Concurrency Language (FCL).

The surface syntax follows the paper's figures: ``struct`` declarations with
``iso`` fields, ``def`` functions with ``consumes``/``after`` annotations,
``let some(x) = e in { ... } else { ... }`` pattern binding, ``if
disconnected(a, b)``, and blocking ``send``/``recv`` primitives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """All lexical token categories of FCL."""

    # Literals and names
    IDENT = "IDENT"
    INT = "INT"

    # Keywords
    STRUCT = "struct"
    DEF = "def"
    ISO = "iso"
    LET = "let"
    VAR = "var"
    IN = "in"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    DISCONNECTED = "disconnected"
    SOME = "some"
    NONE = "none"
    IS_NONE = "is_none"
    IS_SOME = "is_some"
    NEW = "new"
    SEND = "send"
    RECV = "recv"
    RETURN = "return"
    TRUE = "true"
    FALSE = "false"
    CONSUMES = "consumes"
    AFTER = "after"
    BEFORE = "before"
    PINNED = "pinned"
    RESULT = "result"
    UNIT_KW = "unit"
    INT_KW = "int"
    BOOL_KW = "bool"

    # Punctuation / operators
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    SEMI = ";"
    COLON = ":"
    COMMA = ","
    DOT = "."
    QUESTION = "?"
    TILDE = "~"
    ASSIGN = "="
    EQ = "=="
    NEQ = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "EOF"


#: Keywords mapped from their source spelling to the token kind.
KEYWORDS = {
    kind.value: kind
    for kind in (
        TokenKind.STRUCT,
        TokenKind.DEF,
        TokenKind.ISO,
        TokenKind.LET,
        TokenKind.VAR,
        TokenKind.IN,
        TokenKind.IF,
        TokenKind.ELSE,
        TokenKind.WHILE,
        TokenKind.DISCONNECTED,
        TokenKind.SOME,
        TokenKind.NONE,
        TokenKind.IS_NONE,
        TokenKind.IS_SOME,
        TokenKind.NEW,
        TokenKind.SEND,
        TokenKind.RECV,
        TokenKind.RETURN,
        TokenKind.TRUE,
        TokenKind.FALSE,
        TokenKind.CONSUMES,
        TokenKind.AFTER,
        TokenKind.BEFORE,
        TokenKind.PINNED,
        TokenKind.RESULT,
        TokenKind.UNIT_KW,
        TokenKind.INT_KW,
        TokenKind.BOOL_KW,
    )
}


@dataclass(frozen=True)
class SourceSpan:
    """Half-open character span with 1-based line/column of its start."""

    start: int
    end: int
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    @staticmethod
    def merge(first: "SourceSpan", last: "SourceSpan") -> "SourceSpan":
        """Span covering everything from ``first`` through ``last``."""
        return SourceSpan(first.start, last.end, first.line, first.column)


#: Span used for synthesized AST nodes that have no source position.
SYNTHETIC_SPAN = SourceSpan(0, 0, 0, 0)


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: TokenKind
    text: str
    span: SourceSpan

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})@{self.span}"
