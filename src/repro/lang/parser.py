"""Recursive-descent parser for FCL.

Grammar sketch (see DESIGN.md §3 and the paper's fig 6 / §4.9)::

    program     := (struct_def | func_def)*
    struct_def  := "struct" IDENT "{" field_decl* "}"
    field_decl  := ["iso"] IDENT ":" type ";"
    type        := ("int" | "bool" | "unit" | IDENT) ["?"]
    func_def    := "def" IDENT "(" [params] ")" [":" type] annots block
    params      := param_group ("," param_group)*           # "l1, l2 : T"
    annots      := ["consumes" IDENT ("," IDENT)*]
                   ["before" ":" rel ("," rel)*]
                   ["after" ":" rel ("," rel)*]
    rel         := path "~" path
    path        := ("result" | IDENT) ("." IDENT)*
    block       := "{" [expr (";" expr)* [";"]] "}"
    expr        := let | assignment-or-operator expression
    let         := "let" "some" "(" IDENT ")" "=" expr "in" block ["else" block]
                 | "let" IDENT "=" expr
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ast
from .lexer import tokenize
from .tokens import SourceSpan, Token, TokenKind


class ParseError(Exception):
    """Raised on syntactically invalid input."""

    def __init__(self, message: str, span: Optional[SourceSpan] = None):
        location = f"{span}: " if span is not None else ""
        super().__init__(f"{location}{message}")
        self.span = span


class Parser:
    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def _expect(self, kind: TokenKind) -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            raise ParseError(f"expected {kind.value!r} but found {tok.text!r}", tok.span)
        return self._advance()

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # -- program ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        structs: Dict[str, ast.StructDef] = {}
        funcs: Dict[str, ast.FuncDef] = {}
        while not self._at(TokenKind.EOF):
            if self._at(TokenKind.STRUCT):
                sdef = self.parse_struct()
                if sdef.name in structs:
                    raise ParseError(f"duplicate struct {sdef.name!r}", sdef.span)
                structs[sdef.name] = sdef
            elif self._at(TokenKind.DEF):
                fdef = self.parse_func()
                if fdef.name in funcs:
                    raise ParseError(f"duplicate function {fdef.name!r}", fdef.span)
                funcs[fdef.name] = fdef
            else:
                tok = self._peek()
                raise ParseError(
                    f"expected 'struct' or 'def' but found {tok.text!r}", tok.span
                )
        return ast.Program(structs=structs, funcs=funcs)

    # -- declarations ------------------------------------------------------

    def parse_struct(self) -> ast.StructDef:
        start = self._expect(TokenKind.STRUCT)
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LBRACE)
        fields: List[ast.FieldDecl] = []
        seen = set()
        while not self._accept(TokenKind.RBRACE):
            is_iso = self._accept(TokenKind.ISO) is not None
            fname_tok = self._expect(TokenKind.IDENT)
            self._expect(TokenKind.COLON)
            fty = self.parse_type()
            self._expect(TokenKind.SEMI)
            if fname_tok.text in seen:
                raise ParseError(
                    f"duplicate field {fname_tok.text!r} in struct {name!r}",
                    fname_tok.span,
                )
            seen.add(fname_tok.text)
            fields.append(
                ast.FieldDecl(fname_tok.text, fty, is_iso, span=fname_tok.span)
            )
        return ast.StructDef(name, fields, span=start.span)

    def parse_type(self) -> ast.Type:
        tok = self._peek()
        base: ast.Type
        if self._accept(TokenKind.INT_KW):
            base = ast.INT
        elif self._accept(TokenKind.BOOL_KW):
            base = ast.BOOL
        elif self._accept(TokenKind.UNIT_KW):
            base = ast.UNIT
        elif self._at(TokenKind.IDENT):
            base = ast.StructType(self._advance().text)
        else:
            raise ParseError(f"expected a type but found {tok.text!r}", tok.span)
        if self._accept(TokenKind.QUESTION):
            if isinstance(base, ast.MaybeType):
                raise ParseError("nested maybe types are not allowed", tok.span)
            return ast.MaybeType(base)
        return base

    def parse_func(self) -> ast.FuncDef:
        start = self._expect(TokenKind.DEF)
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.LPAREN)
        params = self._parse_params()
        self._expect(TokenKind.RPAREN)
        ret: ast.Type = ast.UNIT
        if self._accept(TokenKind.COLON):
            ret = self.parse_type()
        consumes: List[str] = []
        before: List[Tuple[ast.AnnotPath, ast.AnnotPath]] = []
        after: List[Tuple[ast.AnnotPath, ast.AnnotPath]] = []
        while True:
            if self._accept(TokenKind.CONSUMES):
                consumes.append(self._expect(TokenKind.IDENT).text)
                while self._accept(TokenKind.COMMA):
                    consumes.append(self._expect(TokenKind.IDENT).text)
            elif self._at(TokenKind.BEFORE):
                self._advance()
                self._expect(TokenKind.COLON)
                before.extend(self._parse_relations())
            elif self._at(TokenKind.AFTER):
                self._advance()
                self._expect(TokenKind.COLON)
                after.extend(self._parse_relations())
            else:
                break
        body = self.parse_block()
        return ast.FuncDef(
            name=name,
            params=params,
            return_type=ret,
            body=body,
            consumes=consumes,
            after=after,
            before=before,
            span=start.span,
        )

    def _parse_params(self) -> List[ast.Param]:
        params: List[ast.Param] = []
        if self._at(TokenKind.RPAREN):
            return params
        while True:
            pinned = self._accept(TokenKind.PINNED) is not None
            names = [self._expect(TokenKind.IDENT)]
            while self._accept(TokenKind.COMMA):
                if self._at(TokenKind.PINNED):
                    # Start of the next group; rewind the comma's effect by
                    # finishing this group first.
                    raise ParseError(
                        "'pinned' must start its own parameter group "
                        "(write `pinned x : T, pinned y : T`)",
                        self._peek().span,
                    )
                # Either another name in this group or the start of the next
                # group; decide by looking for a following ":" after the name
                # run.  We parse greedily: collect names until ":".
                names.append(self._expect(TokenKind.IDENT))
            self._expect(TokenKind.COLON)
            ty = self.parse_type()
            params.extend(
                ast.Param(n.text, ty, pinned=pinned, span=n.span) for n in names
            )
            if not self._accept(TokenKind.COMMA):
                break
        return params

    def _parse_relations(self) -> List[Tuple[ast.AnnotPath, ast.AnnotPath]]:
        rels = [self._parse_relation()]
        while self._accept(TokenKind.COMMA):
            rels.append(self._parse_relation())
        return rels

    def _parse_relation(self) -> Tuple[ast.AnnotPath, ast.AnnotPath]:
        left = self._parse_annot_path()
        self._expect(TokenKind.TILDE)
        right = self._parse_annot_path()
        return (left, right)

    def _parse_annot_path(self) -> ast.AnnotPath:
        head = self._accept(TokenKind.RESULT)
        if head is not None:
            segments = ["result"]
        else:
            segments = [self._expect(TokenKind.IDENT).text]
        while self._accept(TokenKind.DOT):
            segments.append(self._expect(TokenKind.IDENT).text)
        return tuple(segments)

    # -- statements / expressions ------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self._expect(TokenKind.LBRACE)
        body: List[ast.Expr] = []
        while not self._at(TokenKind.RBRACE):
            body.append(self.parse_expr())
            if not self._accept(TokenKind.SEMI):
                break
        end = self._expect(TokenKind.RBRACE)
        return ast.Block(body, span=SourceSpan.merge(start.span, end.span))

    def parse_expr(self) -> ast.Expr:
        if self._at(TokenKind.LET):
            return self._parse_let()
        if self._at(TokenKind.IF):
            return self._parse_if()
        if self._at(TokenKind.WHILE):
            return self._parse_while()
        return self._parse_assignment()

    def _parse_let(self) -> ast.Expr:
        start = self._expect(TokenKind.LET)
        if self._accept(TokenKind.SOME):
            self._expect(TokenKind.LPAREN)
            name = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.ASSIGN)
            scrutinee = self.parse_expr()
            self._expect(TokenKind.IN)
            then_block = self.parse_block()
            else_block = None
            if self._accept(TokenKind.ELSE):
                else_block = self.parse_block()
            return ast.LetSome(
                name, scrutinee, then_block, else_block, span=start.span
            )
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.ASSIGN)
        init = self.parse_expr()
        return ast.LetBind(name, init, span=start.span)

    def _parse_if(self) -> ast.Expr:
        start = self._expect(TokenKind.IF)
        if self._accept(TokenKind.DISCONNECTED):
            self._expect(TokenKind.LPAREN)
            left = self.parse_expr()
            self._expect(TokenKind.COMMA)
            right = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            then_block = self.parse_block()
            else_block = None
            if self._accept(TokenKind.ELSE):
                else_block = self.parse_block()
            return ast.IfDisconnected(
                left, right, then_block, else_block, span=start.span
            )
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        then_block = self.parse_block()
        else_block = None
        if self._accept(TokenKind.ELSE):
            else_block = self.parse_block()
        return ast.If(cond, then_block, else_block, span=start.span)

    def _parse_while(self) -> ast.Expr:
        start = self._expect(TokenKind.WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self.parse_block()
        return ast.While(cond, body, span=start.span)

    def _parse_assignment(self) -> ast.Expr:
        target = self._parse_or()
        if self._at(TokenKind.ASSIGN):
            if not isinstance(target, (ast.VarRef, ast.FieldRef)):
                raise ParseError(
                    "assignment target must be a variable or field path",
                    self._peek().span,
                )
            eq = self._advance()
            value = self.parse_expr()
            return ast.Assign(target, value, span=eq.span)
        return target

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            op = self._advance()
            right = self._parse_and()
            left = ast.Binop("||", left, right, span=op.span)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self._at(TokenKind.AND):
            op = self._advance()
            right = self._parse_comparison()
            left = ast.Binop("&&", left, right, span=op.span)
        return left

    _COMPARISON = {
        TokenKind.EQ: "==",
        TokenKind.NEQ: "!=",
        TokenKind.LT: "<",
        TokenKind.GT: ">",
        TokenKind.LE: "<=",
        TokenKind.GE: ">=",
    }

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().kind in self._COMPARISON:
            op = self._advance()
            right = self._parse_additive()
            left = ast.Binop(self._COMPARISON[op.kind], left, right, span=op.span)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self._advance()
            right = self._parse_multiplicative()
            left = ast.Binop(op.text, left, right, span=op.span)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in (TokenKind.STAR, TokenKind.SLASH, TokenKind.PERCENT):
            op = self._advance()
            right = self._parse_unary()
            left = ast.Binop(op.text, left, right, span=op.span)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._at(TokenKind.NOT):
            op = self._advance()
            return ast.Unop("!", self._parse_unary(), span=op.span)
        if self._at(TokenKind.MINUS):
            op = self._advance()
            return ast.Unop("-", self._parse_unary(), span=op.span)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._accept(TokenKind.DOT):
            fname = self._expect(TokenKind.IDENT)
            expr = ast.FieldRef(expr, fname.text, span=fname.span)
        return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if self._accept(TokenKind.INT):
            return ast.IntLit(int(tok.text), span=tok.span)
        if self._accept(TokenKind.TRUE):
            return ast.BoolLit(True, span=tok.span)
        if self._accept(TokenKind.FALSE):
            return ast.BoolLit(False, span=tok.span)
        if self._accept(TokenKind.NONE):
            return ast.NoneLit(span=tok.span)
        if self._accept(TokenKind.SOME):
            # some e or some(e)
            if self._accept(TokenKind.LPAREN):
                inner = self.parse_expr()
                self._expect(TokenKind.RPAREN)
            else:
                inner = self._parse_postfix()
            return ast.SomeExpr(inner, span=tok.span)
        if self._accept(TokenKind.IS_NONE):
            self._expect(TokenKind.LPAREN)
            inner = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return ast.IsNone(inner, span=tok.span)
        if self._accept(TokenKind.IS_SOME):
            self._expect(TokenKind.LPAREN)
            inner = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return ast.IsSome(inner, span=tok.span)
        if self._accept(TokenKind.NEW):
            struct = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.LPAREN)
            inits: Dict[str, ast.Expr] = {}
            if not self._at(TokenKind.RPAREN):
                while True:
                    fname = self._expect(TokenKind.IDENT).text
                    self._expect(TokenKind.ASSIGN)
                    if fname in inits:
                        raise ParseError(f"duplicate initializer {fname!r}", tok.span)
                    inits[fname] = self.parse_expr()
                    if not self._accept(TokenKind.COMMA):
                        break
            self._expect(TokenKind.RPAREN)
            return ast.New(struct, inits, span=tok.span)
        if self._accept(TokenKind.SEND):
            self._expect(TokenKind.LPAREN)
            value = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return ast.Send(value, span=tok.span)
        if self._accept(TokenKind.RECV):
            self._expect(TokenKind.LPAREN)
            ty = self.parse_type()
            self._expect(TokenKind.RPAREN)
            return ast.Recv(ty, span=tok.span)
        if self._at(TokenKind.IDENT):
            name = self._advance()
            if self._accept(TokenKind.LPAREN):
                args: List[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self.parse_expr())
                    while self._accept(TokenKind.COMMA):
                        args.append(self.parse_expr())
                self._expect(TokenKind.RPAREN)
                return ast.Call(name.text, args, span=name.span)
            return ast.VarRef(name.text, span=name.span)
        if self._accept(TokenKind.LPAREN):
            if self._accept(TokenKind.RPAREN):
                return ast.UnitLit(span=tok.span)
            inner = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return inner
        if self._at(TokenKind.LBRACE):
            return self.parse_block()
        raise ParseError(f"unexpected token {tok.text!r}", tok.span)


def parse_program(source: str) -> ast.Program:
    """Parse a complete FCL program (structs + functions)."""
    return Parser(source).parse_program()


def parse_expr(source: str) -> ast.Expr:
    """Parse a single FCL expression (used by tests)."""
    parser = Parser(source)
    expr = parser.parse_expr()
    tok = parser._peek()
    if tok.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input {tok.text!r}", tok.span)
    return expr
