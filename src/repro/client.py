"""A small blocking client for the ``repro-rpc/1`` protocol.

Used by ``repro client``, the server tests, and ``repro bench``'s server
section.  One socket, JSON lines, strictly request/response::

    from repro.client import Client

    with Client(("127.0.0.1", 7621)) as client:
        result = client.check(source, filename="list.fcl")   # CheckResult

Addresses: a ``(host, port)`` tuple, a unix socket path (``"/run/x.sock"``
or ``"unix:/run/x.sock"``), or ``"host:port"``.

Protocol-level failures raise :class:`RemoteError` (carrying the server's
error ``code``); transport failures raise :class:`ClientError`.  Program-
level failures never raise — they come back as ``ok=False`` results with
:class:`~repro.api.Diagnostic` records, exactly like :mod:`repro.api`.

When event tracing is enabled in the client process
(``telemetry.enable_tracing()``), every :meth:`Client.call` wraps the
round trip in an ``rpc.<method>`` span and stamps its context into the
frame's ``trace`` key, so the daemon's ``server.<method>`` span (and
everything beneath it) becomes a child of the client's span — one trace
tree across both processes.  With tracing off, frames are byte-identical
to previous releases.
"""

from __future__ import annotations

import itertools
import json
import socket
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .api import CheckResult, RunResult, VerifyResult
from . import telemetry as tel
from .server.protocol import RPC_SCHEMA

Address = Union[str, Tuple[str, int]]


class ClientError(Exception):
    """Transport-level failure (connect, framing, premature close)."""


class RemoteError(ClientError):
    """The server answered with a protocol-level error envelope."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


def parse_address(spec: str) -> Address:
    """``unix:PATH`` / ``PATH-with-slash`` / ``HOST:PORT`` / ``:PORT`` /
    ``[IPV6]:PORT``.

    Bracketed IPv6 specs (``[::1]:7621``) follow RFC 3986 host syntax:
    the brackets delimit the host (whose colons would otherwise be
    ambiguous with the port separator) and are stripped from the
    returned host.  Bare IPv6 (``::1:7621``) also parses — the last
    colon wins — but is ambiguous; prefer brackets.
    """
    if spec.startswith("unix:"):
        return spec[len("unix:"):]
    if "/" in spec:
        return spec
    bad = ClientError(
        f"bad address {spec!r} (want HOST:PORT, [IPV6]:PORT, or unix:PATH)"
    )
    if spec.startswith("["):
        # [IPV6]:PORT — rpartition(":") alone would keep the brackets in
        # the host, which no resolver accepts.
        host, bracket, port = spec.rpartition("]:")
        if not bracket or not host.startswith("["):
            raise bad
        try:
            return (host[1:], int(port))
        except ValueError:
            raise bad
    if ":" in spec:
        host, _, port = spec.rpartition(":")
        try:
            return (host or "127.0.0.1", int(port))
        except ValueError:
            raise bad
    raise bad


class Client:
    """One connection to a ``repro serve`` daemon."""

    def __init__(self, address: Address, timeout: Optional[float] = 120.0):
        self.address = parse_address(address) if isinstance(address, str) else address
        self.timeout = timeout
        self._ids = itertools.count(1)
        sock: Optional[socket.socket] = None
        try:
            if isinstance(self.address, str):
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(timeout)
                sock.connect(self.address)
            else:
                sock = socket.create_connection(self.address, timeout=timeout)
        except OSError as exc:
            # A failed connect must not leak the file descriptor (the
            # AF_UNIX socket exists before connect; create_connection
            # closes its own attempts but not on e.g. getaddrinfo
            # KeyboardInterrupt paths).
            if sock is not None:
                sock.close()
            raise ClientError(f"cannot connect to {self.address}: {exc}")
        self._sock = sock
        self._file = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def call(self, method: str, params: Optional[Dict[str, Any]] = None) -> Any:
        """One RPC round trip; returns the ``result`` payload.

        With tracing enabled, the round trip runs under an
        ``rpc.<method>`` span whose context rides in the frame's
        ``trace`` key for the daemon to parent its request span under.
        """
        tr = tel.tracer()
        if tr.enabled:
            with tr.span(f"rpc.{method}", cat="rpc") as ctx:
                return self._call(method, params, ctx)
        return self._call(method, params, None)

    def _call(
        self,
        method: str,
        params: Optional[Dict[str, Any]],
        ctx,
    ) -> Any:
        request_id = next(self._ids)
        frame = {
            "rpc": RPC_SCHEMA,
            "id": request_id,
            "method": method,
            "params": params or {},
        }
        if ctx is not None:
            frame["trace"] = ctx.to_wire()
        try:
            self._sock.sendall(
                (json.dumps(frame, separators=(",", ":")) + "\n").encode("utf-8")
            )
            line = self._file.readline()
        except OSError as exc:
            raise ClientError(f"transport failure: {exc}")
        if not line:
            raise ClientError("server closed the connection")
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ClientError(f"bad response frame: {exc}")
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise RemoteError(
            error.get("code", "unknown"), error.get("message", "?")
        )

    def send_raw(self, payload: bytes) -> Dict[str, Any]:
        """Ship arbitrary bytes (tests: malformed/oversize frames) and
        read back one response frame."""
        try:
            self._sock.sendall(payload)
            line = self._file.readline()
        except OSError as exc:
            raise ClientError(f"transport failure: {exc}")
        if not line:
            raise ClientError("server closed the connection")
        return json.loads(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Typed convenience methods (the facade, remotely)
    # ------------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def check(self, source: str, filename: str = "<rpc>") -> CheckResult:
        return CheckResult.from_dict(
            self.call("check", {"source": source, "filename": filename})
        )

    def verify(self, source: str, filename: str = "<rpc>") -> VerifyResult:
        return VerifyResult.from_dict(
            self.call("verify", {"source": source, "filename": filename})
        )

    def run(
        self,
        source: str,
        function: str,
        args: Sequence = (),
        filename: str = "<rpc>",
        max_steps: Optional[int] = None,
        erased: bool = False,
        engine: Optional[str] = None,
    ) -> RunResult:
        """``engine=None`` (the default) lets the server choose — warm
        daemons default to the compiled bytecode engine (``"ir"``); the
        effective choice comes back in :attr:`RunResult.engine`.  Pass
        ``"tree"`` or ``"ir"`` to pin it."""
        params: Dict[str, Any] = {
            "source": source,
            "function": function,
            "args": list(args),
            "filename": filename,
            "erased": erased,
        }
        if engine is not None:
            params["engine"] = engine
        if max_steps is not None:
            params["max_steps"] = max_steps
        return RunResult.from_dict(self.call("run", params))

    def batch(self, programs: List[Tuple[str, str]]) -> Dict[str, Any]:
        """``programs`` is a list of ``(label, source)`` pairs."""
        return self.call(
            "batch",
            {
                "programs": [
                    {"label": label, "source": source}
                    for label, source in programs
                ]
            },
        )

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def metrics(self) -> Dict[str, Any]:
        """The server's full metrics export (a ``repro-telemetry/2``
        document — render locally with :func:`repro.telemetry
        .render_prometheus` for text exposition)."""
        return self.call("metrics")

    def trace_doc(self) -> Dict[str, Any]:
        """The server's trace ring buffer: ``{"schema", "enabled",
        "events", "dropped"}`` — ingest into a local tracer to stitch a
        cross-process tree."""
        return self.call("trace")

    def shutdown(self) -> Dict[str, Any]:
        return self.call("shutdown")


__all__ = [
    "Address",
    "Client",
    "ClientError",
    "RemoteError",
    "parse_address",
]
