"""Repo-wide pytest configuration.

The FCL interpreter is a recursive generator: each recursive FCL call
suspends a chain of Python generator frames, so deeply recursive corpus
functions (remove_tail on long lists) need a roomier recursion limit than
CPython's default 1000.
"""

import sys

sys.setrecursionlimit(100_000)
